#include "nvm/device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/logging.h"

namespace crpm {

namespace {

// Streaming (non-temporal) copy, the paper's Section 4 fast path: cache-
// bypassing stores avoid polluting the LLC with checkpoint traffic. Falls
// back to memcpy off x86 or for unaligned destinations.
void nt_memcpy(void* dst, const void* src, size_t len) {
#if defined(__SSE2__)
  if (reinterpret_cast<uintptr_t>(dst) % 16 == 0 && len >= 64) {
    auto* d = static_cast<uint8_t*>(dst);
    const auto* s = static_cast<const uint8_t*>(src);
    size_t vec = len / 16;
    for (size_t i = 0; i < vec; ++i) {
      __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i * 16));
      _mm_stream_si128(reinterpret_cast<__m128i*>(d + i * 16), v);
    }
    size_t done = vec * 16;
    if (done < len) std::memcpy(d + done, s + done, len - done);
    return;
  }
#endif
  std::memcpy(dst, src, len);
}

thread_local const char* t_persist_site = "untagged";

}  // namespace

PersistSiteScope::PersistSiteScope(const char* site) : prev_(t_persist_site) {
  t_persist_site = site;
}

PersistSiteScope::~PersistSiteScope() { t_persist_site = prev_; }

const char* PersistSiteScope::current() { return t_persist_site; }

void NvmDevice::flush(const void* addr, size_t len) {
  if (len == 0) return;
  CRPM_CHECK(contains(addr, len), "flush outside device: off=%llu len=%zu",
             (unsigned long long)offset_of(addr), len);
  uint64_t off = offset_of(addr);
  uint64_t first = off / kCacheLineSize;
  uint64_t last = (off + len - 1) / kCacheLineSize;
  uint64_t lines = last - first + 1;

  if (cost_.eadr) {
    // eADR: the cache is persistent; clwb is elided entirely. Media-effect
    // callbacks still run so the crash simulator stays conservative.
    stats_.add_media_write(media_bytes_for_range(off, len));
  } else {
    stats_.add_clwb(lines);
    stats_.add_media_write(media_bytes_for_range(off, len));
    pending_lines_.fetch_add(lines, std::memory_order_relaxed);
    if (cost_.enabled) spin_for_ns(cost_.clwb_ns * double(lines));
  }

  if (__builtin_expect(hook_ != nullptr, 0)) {
    for (uint64_t l = first; l <= last; ++l) {
      emit(PersistEventKind::kFlush, l * kCacheLineSize);
      media_flush_line(l * kCacheLineSize);
    }
  } else {
    for (uint64_t l = first; l <= last; ++l) {
      media_flush_line(l * kCacheLineSize);
    }
  }
}

void NvmDevice::fence() {
  uint64_t pending = pending_lines_.exchange(0, std::memory_order_acq_rel);
  stats_.add_sfence();
  if (cost_.enabled) {
    // eADR fences only order stores — no write-pending-queue drain.
    spin_for_ns(cost_.eadr ? cost_.sfence_base_ns
                           : cost_.sfence_base_ns +
                                 cost_.sfence_per_pending_line_ns *
                                     double(pending));
  }
  emit(PersistEventKind::kFence, 0);
  media_fence();
}

void NvmDevice::nt_copy(void* dst, const void* src, size_t len) {
  if (len == 0) return;
  CRPM_CHECK(contains(dst, len), "nt_copy outside device: off=%llu len=%zu",
             (unsigned long long)offset_of(dst), len);
  uint64_t off = offset_of(dst);
  uint64_t first = off / kCacheLineSize;
  uint64_t last = (off + len - 1) / kCacheLineSize;
  uint64_t lines = last - first + 1;

  stats_.add_nt_store_bytes(len);
  uint64_t media = media_bytes_for_range(off, len);
  stats_.add_media_write(media);
  pending_lines_.fetch_add(lines, std::memory_order_relaxed);
  // Streaming stores are charged at the DIMM's 256 B media granularity: a
  // sub-media-line burst still costs a full XPLine internally.
  if (cost_.enabled) {
    spin_for_ns(cost_.nt_store_ns_per_line *
                double(media / kCacheLineSize));
  }

  if (__builtin_expect(hook_ != nullptr, 0)) {
    // Copy line by line so a crash injected mid-copy leaves a torn copy,
    // exactly as interrupted streaming stores would on hardware.
    auto* d = static_cast<uint8_t*>(dst);
    auto* s = static_cast<const uint8_t*>(src);
    size_t copied = 0;
    for (uint64_t l = first; l <= last; ++l) {
      emit(PersistEventKind::kNtStore, l * kCacheLineSize);
      uint64_t line_begin = l * kCacheLineSize;
      uint64_t line_end = line_begin + kCacheLineSize;
      uint64_t cb = std::max<uint64_t>(line_begin, off);
      uint64_t ce = std::min<uint64_t>(line_end, off + len);
      std::memcpy(base_ + cb, s + (cb - off), ce - cb);
      copied += ce - cb;
      media_nt_line(line_begin);
    }
    CRPM_CHECK(copied == len, "torn accounting bug");
    (void)d;
  } else {
    nt_memcpy(dst, src, len);
    for (uint64_t l = first; l <= last; ++l) {
      media_nt_line(l * kCacheLineSize);
    }
  }
}

void NvmDevice::wbinvd_flush() {
  stats_.add_wbinvd();
  if (cost_.enabled) spin_for_ns(cost_.wbinvd_ns);
  emit(PersistEventKind::kWbinvd, 0);
  media_wbinvd();
}

HeapNvmDevice::HeapNvmDevice(size_t size) : NvmDevice(nullptr, 0) {
  size_t aligned = (size + 4095) & ~size_t{4095};
  mem_ = static_cast<uint8_t*>(std::aligned_alloc(4096, aligned));
  CRPM_CHECK(mem_ != nullptr, "aligned_alloc(%zu) failed", aligned);
  std::memset(mem_, 0, aligned);
  set_base(mem_, aligned);
}

HeapNvmDevice::~HeapNvmDevice() { std::free(mem_); }

FileNvmDevice::FileNvmDevice(const std::string& path, size_t size)
    : NvmDevice(nullptr, 0), path_(path) {
  size_t aligned = (size + 4095) & ~size_t{4095};
  struct stat st;
  existed_ = (::stat(path.c_str(), &st) == 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  CRPM_CHECK(fd_ >= 0, "open(%s) failed: %s", path.c_str(),
             std::strerror(errno));
  CRPM_CHECK(::ftruncate(fd_, static_cast<off_t>(aligned)) == 0,
             "ftruncate(%s, %zu) failed: %s", path.c_str(), aligned,
             std::strerror(errno));
  void* mem = ::mmap(nullptr, aligned, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
  CRPM_CHECK(mem != MAP_FAILED, "mmap(%s) failed: %s", path.c_str(),
             std::strerror(errno));
  set_base(static_cast<uint8_t*>(mem), aligned);
}

FileNvmDevice::~FileNvmDevice() {
  if (base() != nullptr) ::munmap(base(), size());
  if (fd_ >= 0) ::close(fd_);
}

}  // namespace crpm
