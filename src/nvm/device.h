// Simulated NVM devices.
//
// An NvmDevice hands out a flat byte range standing in for an Optane DIMM
// mapping and implements the persistence primitives the runtime uses:
//
//   flush(addr, len)   clwb every cache line in the range
//   fence()            sfence — orders and (with ADR) drains pending flushes
//   nt_copy(...)       non-temporal (streaming) copy, durable at next fence
//   wbinvd_flush()     whole-cache writeback, used by the checkpoint
//                      protocol when the dirty set exceeds the LLC size
//
// Every primitive updates PersistStats (Table 1 metrics) and, when a
// CostModel is enabled, charges emulated DCPMM latency. A per-event hook
// supports crash-point injection (see crash_sim.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "nvm/cost_model.h"
#include "nvm/stats.h"

namespace crpm {

enum class PersistEventKind : uint8_t {
  kFlush,    // one clwb (64B line)
  kFence,    // one sfence
  kNtStore,  // one 64B non-temporal store
  kWbinvd,   // whole-cache flush
};

struct PersistEvent {
  PersistEventKind kind;
  uint64_t offset;  // device offset of the affected line (0 for fences)
  const char* site;  // protocol phase tag (PersistSiteScope), "untagged"
};

// Tags every persist event emitted by the current thread while the scope is
// alive, e.g. `PersistSiteScope tag("ckpt.commit");` around the
// committed_epoch persist. Scopes nest; the previous tag is restored on
// destruction. Only read when an event hook is installed, so the production
// path pays nothing beyond the existing hook_ branch.
//
// Async checkpointing (CrpmOptions::async_checkpoint) adds its own sites:
// "async.flush" (pipeline block flushes), "async.steal" (write-hook stolen
// flushes), "async.stage" (staged seg_state/roots), "async.commit" (the
// background committed_epoch bump) and "async.final" (post-commit rebuild
// of stolen segments' backups). The crash-matrix scenario "core-async"
// walks all of them.
class PersistSiteScope {
 public:
  explicit PersistSiteScope(const char* site);
  ~PersistSiteScope();

  PersistSiteScope(const PersistSiteScope&) = delete;
  PersistSiteScope& operator=(const PersistSiteScope&) = delete;

  // The innermost active tag on this thread ("untagged" outside any scope).
  static const char* current();

 private:
  const char* prev_;
};

// Invoked before the event takes effect on the media. Throwing aborts the
// event (and, in tests, simulates a crash at that exact point).
using PersistEventHook = std::function<void(const PersistEvent&)>;

class NvmDevice {
 public:
  virtual ~NvmDevice() = default;

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  uint8_t* base() const { return base_; }
  size_t size() const { return size_; }

  bool contains(const void* p, size_t len) const {
    auto a = reinterpret_cast<uintptr_t>(p);
    auto b = reinterpret_cast<uintptr_t>(base_);
    return a >= b && a + len <= b + size_;
  }

  uint64_t offset_of(const void* p) const {
    return static_cast<uint64_t>(reinterpret_cast<const uint8_t*>(p) - base_);
  }

  // clwb every cache line overlapping [addr, addr + len).
  void flush(const void* addr, size_t len);

  // sfence.
  void fence();

  // flush + fence.
  void persist(const void* addr, size_t len) {
    flush(addr, len);
    fence();
  }

  // Streaming copy into the device; contents are durable after the next
  // fence(). `dst` must lie within the device; `src` may be anywhere.
  void nt_copy(void* dst, const void* src, size_t len);

  // Whole-cache writeback (wbinvd). Used when flushing the dirty set line
  // by line would cost more than draining the entire LLC.
  void wbinvd_flush();

  PersistStats& stats() { return stats_; }
  const PersistStats& stats() const { return stats_; }

  const CostModel& cost_model() const { return cost_; }
  void set_cost_model(const CostModel& m) { cost_ = m; }

  // Installs a hook receiving one event per cache line / fence. Slows the
  // device down; intended for crash-injection tests only.
  void set_event_hook(PersistEventHook hook) { hook_ = std::move(hook); }

 protected:
  NvmDevice(uint8_t* base, size_t size) : base_(base), size_(size) {}

  // Media-effect callbacks, offsets are device-relative and line-aligned.
  virtual void media_flush_line(uint64_t /*line_offset*/) {}
  virtual void media_fence() {}
  virtual void media_nt_line(uint64_t /*line_offset*/) {}
  virtual void media_wbinvd() {}

  void set_base(uint8_t* base, size_t size) {
    base_ = base;
    size_ = size;
  }

 private:
  void emit(PersistEventKind kind, uint64_t offset) {
    if (hook_) hook_(PersistEvent{kind, offset, PersistSiteScope::current()});
  }

  uint8_t* base_ = nullptr;
  size_t size_ = 0;
  PersistStats stats_;
  CostModel cost_;
  PersistEventHook hook_;
  std::atomic<uint64_t> pending_lines_{0};
};

// DRAM-backed device (aligned_alloc). No durability across process exit;
// used by unit tests and by DRAM-vs-NVM baselines.
class HeapNvmDevice final : public NvmDevice {
 public:
  explicit HeapNvmDevice(size_t size);
  ~HeapNvmDevice() override;

 private:
  uint8_t* mem_;
};

// File-backed device (mmap, shared). Survives process crashes and
// restarts — MAP_SHARED dirty pages live in the OS page cache regardless
// of how the process dies — which the integration tests and examples use
// for real kill/reopen recovery. Durability across a HOST power failure
// additionally requires the backing file to be on real persistent memory
// (DAX) or an fsync'd filesystem; this simulation does not msync.
class FileNvmDevice final : public NvmDevice {
 public:
  // Opens (creating and sizing if necessary) `path` and maps `size` bytes.
  // If the file exists with a different size it is resized.
  FileNvmDevice(const std::string& path, size_t size);
  ~FileNvmDevice() override;

  const std::string& path() const { return path_; }

  // Returns true if `path` existed before this device opened it.
  bool existed() const { return existed_; }

 private:
  std::string path_;
  int fd_ = -1;
  bool existed_ = false;
};

}  // namespace crpm
