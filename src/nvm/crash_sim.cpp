#include "nvm/crash_sim.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace crpm {

CrashSimDevice::CrashSimDevice(size_t size) : NvmDevice(nullptr, 0) {
  size_t aligned = (size + 4095) & ~size_t{4095};
  volatile_mem_ = static_cast<uint8_t*>(std::aligned_alloc(4096, aligned));
  CRPM_CHECK(volatile_mem_ != nullptr, "aligned_alloc(%zu) failed", aligned);
  std::memset(volatile_mem_, 0, aligned);
  media_.assign(aligned, 0);
  staged_.assign(aligned, 0);
  staged_bits_.reset_size(aligned / kCacheLineSize);
  set_base(volatile_mem_, aligned);

  set_event_hook([this](const PersistEvent& ev) {
    uint64_t idx = events_seen_++;
    if (recorder_ != nullptr) recorder_->push_back(ev.site);
    if (armed_ && idx == crash_target_) {
      armed_ = false;
      throw SimulatedCrash{idx};
    }
  });
}

CrashSimDevice::~CrashSimDevice() { std::free(volatile_mem_); }

void CrashSimDevice::arm_crash_at_event(uint64_t target) {
  crash_target_ = target;
  armed_ = true;
  events_seen_ = 0;
}

void CrashSimDevice::disarm() { armed_ = false; }

void CrashSimDevice::stage_line(uint64_t line_offset) {
  std::memcpy(staged_.data() + line_offset, volatile_mem_ + line_offset,
              kCacheLineSize);
  staged_bits_.set(line_offset / kCacheLineSize);
}

void CrashSimDevice::media_flush_line(uint64_t line_offset) {
  stage_line(line_offset);
}

void CrashSimDevice::media_nt_line(uint64_t line_offset) {
  // nt_copy updates the volatile image first (in NvmDevice::nt_copy), then
  // calls this; streaming stores go straight to the WPQ, i.e. staged.
  stage_line(line_offset);
}

void CrashSimDevice::media_fence() {
  staged_bits_.for_each_set([this](size_t line) {
    uint64_t off = line * kCacheLineSize;
    std::memcpy(media_.data() + off, staged_.data() + off, kCacheLineSize);
  });
  staged_bits_.clear_all();
}

void CrashSimDevice::media_wbinvd() {
  // A whole-cache writeback flushes every dirty line: stage every line whose
  // volatile contents differ from what is already staged/durable.
  size_t lines = size() / kCacheLineSize;
  for (size_t l = 0; l < lines; ++l) {
    uint64_t off = l * kCacheLineSize;
    const uint8_t* current = staged_bits_.test(l) ? staged_.data() + off
                                                  : media_.data() + off;
    if (std::memcmp(volatile_mem_ + off, current, kCacheLineSize) != 0) {
      stage_line(off);
    }
  }
}

void CrashSimDevice::crash_and_restart(CrashPolicy policy, Xoshiro256& rng) {
  switch (policy) {
    case CrashPolicy::kDropPending:
      break;
    case CrashPolicy::kCommitPending:
      media_fence();
      break;
    case CrashPolicy::kRandomPending:
      staged_bits_.for_each_set([&](size_t line) {
        if (rng.next() & 1) {
          uint64_t off = line * kCacheLineSize;
          std::memcpy(media_.data() + off, staged_.data() + off,
                      kCacheLineSize);
        }
      });
      break;
  }
  staged_bits_.clear_all();
  std::memcpy(volatile_mem_, media_.data(), size());
  armed_ = false;
}

}  // namespace crpm
