// Crash-simulation NVM device.
//
// Models the volatile-cache / persistent-media split of an ADR platform:
//
//   * Application stores land in the *volatile* image (the pointer handed
//     to the runtime) and are NOT durable.
//   * flush(line) stages the line's current volatile contents.
//   * fence() commits all staged lines to the *media* image.
//   * A simulated crash discards the volatile image and reloads it from
//     media. Staged-but-unfenced lines are committed per CrashPolicy —
//     kDropPending is the conservative outcome, kRandomPending models the
//     hardware's freedom to drain the write-pending queue partially and
//     out of order.
//
// Together with the per-line event hook this enumerates every reachable
// crash state of the checkpoint protocol; the failure-atomicity tests
// (tests/crash_injection_test.cpp) are built on it.
#pragma once

#include <memory>
#include <vector>

#include "nvm/device.h"
#include "util/bitmap.h"
#include "util/rng.h"

namespace crpm {

enum class CrashPolicy {
  kDropPending,    // no staged line reaches media (WPQ fully lost)
  kCommitPending,  // every staged line reaches media (WPQ fully drained)
  kRandomPending,  // each staged line independently reaches media or not
};

// Thrown by the crash-point injector; unwinds the protocol code under test.
struct SimulatedCrash {
  uint64_t event_index;
};

class CrashSimDevice final : public NvmDevice {
 public:
  explicit CrashSimDevice(size_t size);
  ~CrashSimDevice() override;

  // Discards volatile state per `policy` and reloads the volatile image
  // from media, as a machine restart would.
  void crash_and_restart(CrashPolicy policy, Xoshiro256& rng);

  // Installs a hook that throws SimulatedCrash at the `target`-th persist
  // event (0-based) and disarms itself. Returns false and stays disarmed if
  // a previous arm never fired (target beyond the event count).
  void arm_crash_at_event(uint64_t target);
  void disarm();
  uint64_t events_seen() const { return events_seen_; }

  // When set, every persist event appends its site tag (the event's index
  // is the vector position). The crash-matrix harness uses this in count
  // mode to enumerate the crash surface with per-site attribution. The
  // recorder must outlive the device or be cleared with nullptr.
  void set_event_recorder(std::vector<const char*>* recorder) {
    recorder_ = recorder;
  }

  // Direct media inspection for tests.
  const uint8_t* media() const { return media_.data(); }

  // Count of staged (flushed-but-unfenced) lines.
  size_t staged_lines() const { return staged_bits_.count(); }

 private:
  void media_flush_line(uint64_t line_offset) override;
  void media_fence() override;
  void media_nt_line(uint64_t line_offset) override;
  void media_wbinvd() override;

  void stage_line(uint64_t line_offset);

  uint8_t* volatile_mem_;
  std::vector<uint8_t> media_;
  std::vector<uint8_t> staged_;     // staged contents, line-granular overlay
  AtomicBitmap staged_bits_;        // one bit per cache line

  uint64_t events_seen_ = 0;
  uint64_t crash_target_ = ~uint64_t{0};
  bool armed_ = false;
  std::vector<const char*>* recorder_ = nullptr;
};

}  // namespace crpm
