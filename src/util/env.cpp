#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace crpm {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long x = std::strtoull(v, &end, 0);
  if (end == v) return fallback;
  // Accept k/m/g suffixes (powers of two) for sizes.
  if (end != nullptr) {
    switch (*end) {
      case 'k': case 'K': x <<= 10; break;
      case 'm': case 'M': x <<= 20; break;
      case 'g': case 'G': x <<= 30; break;
      default: break;
    }
  }
  return static_cast<uint64_t>(x);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double x = std::strtod(v, &end);
  return end == v ? fallback : x;
}

bool env_bool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0 || std::strcmp(v, "no") == 0);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace crpm
