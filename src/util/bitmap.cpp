#include "util/bitmap.h"

#include <cassert>

namespace crpm {

void AtomicBitmap::reset_size(size_t nbits) {
  nbits_ = nbits;
  words_ = std::vector<std::atomic<uint64_t>>((nbits + 63) / 64);
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void AtomicBitmap::clear_range(size_t first, size_t n) {
  if (n == 0) return;
  assert(first + n <= nbits_);
  size_t last = first + n;  // exclusive
  size_t w_first = first >> 6;
  size_t w_last = (last - 1) >> 6;
  if (w_first == w_last) {
    uint64_t mask = (~uint64_t{0} << (first & 63));
    if ((last & 63) != 0) mask &= (uint64_t{1} << (last & 63)) - 1;
    words_[w_first].fetch_and(~mask, std::memory_order_acq_rel);
    return;
  }
  // Leading partial word.
  if ((first & 63) != 0) {
    uint64_t mask = ~uint64_t{0} << (first & 63);
    words_[w_first].fetch_and(~mask, std::memory_order_acq_rel);
    ++w_first;
  }
  // Trailing partial word.
  if ((last & 63) != 0) {
    uint64_t mask = (uint64_t{1} << (last & 63)) - 1;
    words_[w_last].fetch_and(~mask, std::memory_order_acq_rel);
  } else {
    ++w_last;  // trailing word is full, clear it in the loop below
  }
  for (size_t w = w_first; w < w_last; ++w) {
    words_[w].store(0, std::memory_order_release);
  }
}

void AtomicBitmap::clear_all() {
  for (auto& w : words_) w.store(0, std::memory_order_release);
}

size_t AtomicBitmap::count_range(size_t first, size_t n) const {
  size_t total = 0;
  if (n == 0) return 0;
  size_t last = first + n;
  size_t w = first >> 6;
  size_t w_end = (last + 63) >> 6;
  for (; w < w_end; ++w) {
    uint64_t bits = words_[w].load(std::memory_order_acquire);
    if (w == (first >> 6) && (first & 63) != 0) {
      bits &= ~uint64_t{0} << (first & 63);
    }
    if (w == (last >> 6) && (last & 63) != 0) {
      bits &= (uint64_t{1} << (last & 63)) - 1;
    }
    total += static_cast<size_t>(__builtin_popcountll(bits));
  }
  return total;
}

}  // namespace crpm
