// Atomic dynamic bitmaps used for dirty-block and dirty-segment tracking.
//
// The dirty block bitmap is the hottest DRAM structure in libcrpm: the
// instrumented write hook sets one bit per touched 256-byte block, and the
// copy-on-write path scans a segment-sized window of bits. Both operations
// must be cheap and thread-safe, hence a flat array of atomic 64-bit words.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crpm {

// Fixed-capacity bitmap with atomic bit operations.
//
// Concurrent set/test/clear on distinct or identical bits are safe. Bulk
// operations (clear_range, count, for_each_set) are not atomic snapshots;
// callers serialize them against writers (libcrpm does so with per-segment
// locks and the collective checkpoint barrier).
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(size_t nbits) { reset_size(nbits); }

  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;

  // Discards all contents and resizes. Not thread-safe.
  void reset_size(size_t nbits);

  size_t size_bits() const { return nbits_; }
  bool empty_capacity() const { return nbits_ == 0; }

  // Sets bit `i`; returns true if this call changed it from 0 to 1.
  bool set(size_t i) {
    uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t old = words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  // Relaxed set used on hot paths where the caller already owns ordering.
  void set_relaxed(size_t i) {
    uint64_t mask = uint64_t{1} << (i & 63);
    words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
  }

  bool test(size_t i) const {
    uint64_t mask = uint64_t{1} << (i & 63);
    return (words_[i >> 6].load(std::memory_order_acquire) & mask) != 0;
  }

  // Clears bit `i`; returns true if this call changed it from 1 to 0.
  bool clear(size_t i) {
    uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t old = words_[i >> 6].fetch_and(~mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  // Clears bits [first, first + n). Word-sliced for speed.
  void clear_range(size_t first, size_t n);

  // Clears every bit.
  void clear_all();

  // Number of set bits in [first, first + n).
  size_t count_range(size_t first, size_t n) const;

  // Number of set bits overall.
  size_t count() const { return count_range(0, nbits_); }

  // Invokes fn(index) for every set bit in [first, first + n), ascending.
  template <typename Fn>
  void for_each_set(size_t first, size_t n, Fn&& fn) const {
    if (n == 0) return;
    size_t last = first + n;  // exclusive
    size_t w = first >> 6;
    size_t w_end = (last + 63) >> 6;
    for (; w < w_end; ++w) {
      uint64_t bits = words_[w].load(std::memory_order_acquire);
      if (bits == 0) continue;
      // Mask off bits outside [first, last).
      if (w == (first >> 6) && (first & 63) != 0) {
        bits &= ~uint64_t{0} << (first & 63);
      }
      if (w == (last >> 6) && (last & 63) != 0) {
        bits &= (uint64_t{1} << (last & 63)) - 1;
      }
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for_each_set(0, nbits_, std::forward<Fn>(fn));
  }

  // True if any bit in [first, first + n) is set.
  bool any_in_range(size_t first, size_t n) const {
    bool found = false;
    // Word-sliced scan with early exit.
    size_t last = first + n;
    size_t w = first >> 6;
    size_t w_end = (last + 63) >> 6;
    for (; w < w_end && !found; ++w) {
      uint64_t bits = words_[w].load(std::memory_order_acquire);
      if (w == (first >> 6) && (first & 63) != 0) {
        bits &= ~uint64_t{0} << (first & 63);
      }
      if (w == (last >> 6) && (last & 63) != 0) {
        bits &= (uint64_t{1} << (last & 63)) - 1;
      }
      found = bits != 0;
    }
    return found;
  }

  // Invokes fn(index) for every bit set in `a` OR `b` within
  // [first, first + n). Both bitmaps must have the same capacity.
  template <typename Fn>
  static void for_each_set_union(const AtomicBitmap& a, const AtomicBitmap& b,
                                 size_t first, size_t n, Fn&& fn) {
    if (n == 0) return;
    size_t last = first + n;
    size_t w = first >> 6;
    size_t w_end = (last + 63) >> 6;
    for (; w < w_end; ++w) {
      uint64_t bits = a.words_[w].load(std::memory_order_acquire) |
                      b.words_[w].load(std::memory_order_acquire);
      if (bits == 0) continue;
      if (w == (first >> 6) && (first & 63) != 0) {
        bits &= ~uint64_t{0} << (first & 63);
      }
      if (w == (last >> 6) && (last & 63) != 0) {
        bits &= (uint64_t{1} << (last & 63)) - 1;
      }
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  // Number of bits set in `a` OR `b` within [first, first + n).
  static size_t count_union(const AtomicBitmap& a, const AtomicBitmap& b,
                            size_t first, size_t n) {
    size_t total = 0;
    for_each_set_union(a, b, first, n, [&](size_t) { ++total; });
    return total;
  }

  // Moves contents of `src` into this bitmap and clears `src`. Not atomic;
  // callers serialize against writers.
  void assign_and_clear(AtomicBitmap& src) {
    for (size_t w = 0; w < words_.size(); ++w) {
      words_[w].store(src.words_[w].exchange(0, std::memory_order_acq_rel),
                      std::memory_order_release);
    }
  }

 private:
  size_t nbits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace crpm
