// Small fast PRNG (xoshiro256**) for workload generation.
//
// std::mt19937_64 is noticeably slower and larger; the KV benchmarks draw a
// random number per operation so generator cost must be negligible next to
// the data-structure operation being measured.
#pragma once

#include <cstdint>

namespace crpm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return next(); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace crpm
