// Synchronization primitives: test-and-test-and-set spinlock (the paper's
// per-segment locks) and a reusable sense-reversing thread barrier (the
// collective crpm_checkpoint entry/exit barriers of Figure 6).
#pragma once

#include <atomic>
#include <cstddef>

namespace crpm {

// Per-segment lock. Copy-on-write critical sections are short (at most one
// segment copy), so a spinlock beats a futex-based mutex; there is one lock
// per 2 MB segment so the array must stay small (1 byte of state).
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Reusable barrier for N threads (sense-reversing). crpm_checkpoint is
// collective: every application thread calls it and blocks until all threads
// have arrived, so no thread is still mutating container data when the
// leader commits the checkpoint.
class SpinBarrier {
 public:
  explicit SpinBarrier(size_t n) : n_(n), remaining_(n) {}

  // Returns true on exactly one thread per round (the "leader").
  bool arrive_and_wait() {
    bool sense = sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(n_, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
      return true;
    }
    while (sense_.load(std::memory_order_acquire) == sense) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    return false;
  }

  size_t participants() const { return n_; }

 private:
  size_t n_;
  std::atomic<size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace crpm
