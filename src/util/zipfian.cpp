#include "util/zipfian.h"

#include <cmath>

namespace crpm {

double ZipfianGenerator::zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t /*seed*/)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::next(Xoshiro256& rng) {
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace crpm
