// Monotonic stopwatch and time-accumulator used for epoch pacing and for
// the execution/trace/checkpoint time breakdown of Figure 1.
#pragma once

#include <chrono>
#include <cstdint>

namespace crpm {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  uint64_t elapsed_ns() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

// Accumulates wall time across disjoint intervals; one per breakdown bucket
// (execution / memory trace / checkpoint).
class TimeAccumulator {
 public:
  void add_ns(uint64_t ns) { total_ns_ += ns; }
  void add(const Stopwatch& sw) { total_ns_ += sw.elapsed_ns(); }
  uint64_t total_ns() const { return total_ns_; }
  double total_sec() const { return double(total_ns_) * 1e-9; }
  void reset() { total_ns_ = 0; }

 private:
  uint64_t total_ns_ = 0;
};

}  // namespace crpm
