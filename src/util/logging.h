// Minimal logging and invariant-checking helpers.
//
// CRPM_CHECK aborts on broken internal invariants — in a persistence library
// continuing past a broken invariant risks corrupting the checkpoint state,
// which is strictly worse than crashing (a crash is recoverable by design).
#pragma once

#include <cstdarg>
#include <cstdlib>

namespace crpm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style logging to stderr with a severity prefix.
void log_msg(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace crpm

#define CRPM_LOG_DEBUG(...) \
  ::crpm::log_msg(::crpm::LogLevel::kDebug, __VA_ARGS__)
#define CRPM_LOG_INFO(...) ::crpm::log_msg(::crpm::LogLevel::kInfo, __VA_ARGS__)
#define CRPM_LOG_WARN(...) ::crpm::log_msg(::crpm::LogLevel::kWarn, __VA_ARGS__)
#define CRPM_LOG_ERROR(...) \
  ::crpm::log_msg(::crpm::LogLevel::kError, __VA_ARGS__)

// Always-on invariant check (not compiled out in release builds).
#define CRPM_CHECK(expr, ...)                                         \
  do {                                                                \
    if (__builtin_expect(!(expr), 0)) {                               \
      ::crpm::check_failed(__FILE__, __LINE__, #expr, __VA_ARGS__);   \
    }                                                                 \
  } while (0)
