// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), seedable for running CRCs.
//
// Lives in util so both the archive format layer (src/snapshot) and the
// tiering layer below it (src/tier) can share one implementation without a
// dependency cycle between their libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace crpm {

uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace crpm
