#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace crpm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::cell(const std::string& s) {
  rows_.back().push_back(s);
  return *this;
}

TablePrinter& TablePrinter::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

TablePrinter& TablePrinter::cell(uint64_t v) {
  return cell(format_count(v));
}

std::string TablePrinter::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      if (r[c].size() > widths[c]) widths[c] = r[c].size();
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << "| " << s << std::string(widths[c] - s.size(), ' ') << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_bytes(uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, units[u]);
  }
  return buf;
}

std::string format_count(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace crpm
