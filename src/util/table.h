// Plain-text table printer for the benchmark harness.
//
// Every bench binary prints the rows of the paper table / figure series it
// reproduces; this formats them with aligned columns so outputs are directly
// comparable to the paper's tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crpm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Begins a new row; subsequent add_* calls fill its cells left to right.
  TablePrinter& row();
  TablePrinter& cell(const std::string& s);
  TablePrinter& cell(const char* s) { return cell(std::string(s)); }
  TablePrinter& cell(double v, int precision = 2);
  TablePrinter& cell(uint64_t v);
  TablePrinter& cell(int v) { return cell(static_cast<uint64_t>(v < 0 ? 0 : v)); }

  // Renders the table to stdout.
  void print() const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a byte count with a binary-unit suffix ("1.5MiB").
std::string format_bytes(uint64_t bytes);

// Formats a count with thousands separators ("12,345,678").
std::string format_count(uint64_t v);

}  // namespace crpm
