// Environment-variable configuration helpers for the benchmark harness.
//
// All benchmarks accept CRPM_BENCH_SCALE-style knobs so the paper's 24M-key
// runs can be scaled to laptop-sized runs without editing code.
#pragma once

#include <cstdint>
#include <string>

namespace crpm {

// Returns the value of `name` parsed as the given type, or `fallback` if the
// variable is unset or unparseable.
uint64_t env_u64(const char* name, uint64_t fallback);
double env_double(const char* name, double fallback);
bool env_bool(const char* name, bool fallback);
std::string env_str(const char* name, const std::string& fallback);

}  // namespace crpm
