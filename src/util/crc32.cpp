#include "util/crc32.h"

#include <cstring>

namespace crpm {

namespace {

// Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration instead of one. Table 0 is the classic bytewise table
// (also used for the sub-8-byte head/tail), table s maps a byte that is
// s positions deeper in the window. Same polynomial, same results as the
// bytewise loop — only the traversal order changes.
struct Crc32Table {
  uint32_t t[8][256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32Table& table() {
  static const Crc32Table tbl;
  return tbl;
}

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  const auto& t = table().t;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  // The 8-byte fold loads two little-endian words; a big-endian target
  // would need byte swaps here.
  static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
                "slice-by-8 fold assumes little-endian loads");
  while (len >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace crpm
