#include "util/crc32.h"

namespace crpm {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table& table() {
  static const Crc32Table tbl;
  return tbl;
}

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  const auto& t = table().t;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace crpm
