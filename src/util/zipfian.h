// Zipfian key generator, YCSB-style (Gray et al., "Quickly generating
// billion-record synthetic databases").
//
// The paper draws keys from a Zipfian distribution with alpha = 0.99 for the
// balanced / read-heavy / read-only workloads (Section 5.2.1). The scrambled
// variant spreads the hot keys across the key space, matching YCSB's
// ScrambledZipfianGenerator, so hot keys don't cluster in adjacent hash
// buckets or tree paths.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace crpm {

class ZipfianGenerator {
 public:
  // Draws values in [0, n). `theta` is the skew (paper: 0.99).
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 1);

  uint64_t next(Xoshiro256& rng);

  uint64_t n() const { return n_; }

 private:
  static double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// Zipfian with the rank-to-key mapping scrambled by a 64-bit mix, so the
// most popular keys are spread uniformly over [0, n).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 1)
      : inner_(n, theta, seed), n_(n) {}

  uint64_t next(Xoshiro256& rng) {
    uint64_t rank = inner_.next(rng);
    return fnv_mix(rank) % n_;
  }

 private:
  static uint64_t fnv_mix(uint64_t x) {
    // FNV-1a over the 8 bytes, like YCSB's FNVhash64.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  ZipfianGenerator inner_;
  uint64_t n_;
};

}  // namespace crpm
