#include "tier/codec.h"

#include <cstring>

namespace crpm::tier {

namespace {

// --- lzb: greedy LZ77 with an 8K-entry hash table ------------------------
//
// Stream grammar (all lengths unsigned, offsets little-endian):
//
//   sequence := token [lit_ext*] literal* (offset16 [match_ext*])?
//   token    := (lit_len:4 << 4) | match_len:4
//
// lit_len 15 extends with 255-run bytes plus a final byte < 255 (LZ4
// style); match lengths are stored minus the 4-byte minimum and extend the
// same way. The final sequence of a block carries only literals: the
// decoder knows it is last because the output is full after copying them.

constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;

inline uint32_t read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t hash32(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a length in LZ4 style: the part above `base` as 255-run bytes plus
// a final byte. Returns false when the output budget is exhausted.
inline bool put_ext_len(size_t len, uint8_t* out, size_t cap, size_t* pos) {
  while (len >= 255) {
    if (*pos >= cap) return false;
    out[(*pos)++] = 255;
    len -= 255;
  }
  if (*pos >= cap) return false;
  out[(*pos)++] = static_cast<uint8_t>(len);
  return true;
}

inline bool get_ext_len(const uint8_t* enc, size_t enc_len, size_t* pos,
                        size_t* len) {
  for (;;) {
    if (*pos >= enc_len) return false;
    uint8_t b = enc[(*pos)++];
    *len += b;
    if (b < 255) return true;
    // 255-run bytes keep extending; a malformed stream runs out of input
    // and fails the bounds check above.
  }
}

class NoneCodec final : public Codec {
 public:
  uint32_t id() const override { return kCodecNone; }
  const char* name() const override { return "none"; }
  size_t max_encoded_bytes(size_t raw) const override { return raw; }
  size_t encode(const uint8_t*, size_t, uint8_t*, size_t) const override {
    return 0;  // never wins: "none" means the frame stays plain
  }
  bool decode(const uint8_t* enc, size_t enc_len, uint8_t* out,
              size_t raw_len) const override {
    if (enc_len != raw_len) return false;
    std::memcpy(out, enc, raw_len);
    return true;
  }
};

class LzbCodec final : public Codec {
 public:
  uint32_t id() const override { return kCodecLzb; }
  const char* name() const override { return "lzb"; }

  size_t max_encoded_bytes(size_t raw) const override {
    return raw + raw / 255 + 16;
  }

  size_t encode(const uint8_t* raw, size_t len, uint8_t* out,
                size_t out_cap) const override {
    size_t pos = 0;      // write cursor in out
    size_t anchor = 0;   // first unemitted literal
    size_t ip = 0;       // parse cursor
    uint32_t tab[kHashSize];
    // Positions are stored +1 so 0 means empty.
    std::memset(tab, 0, sizeof(tab));

    while (len >= kMinMatch && ip + kMinMatch <= len) {
      const uint32_t v = read32(raw + ip);
      const uint32_t h = hash32(v);
      const uint32_t cand = tab[h];
      tab[h] = static_cast<uint32_t>(ip + 1);
      if (cand != 0) {
        const size_t mpos = cand - 1;
        if (ip - mpos <= kMaxOffset && read32(raw + mpos) == v) {
          // Extend the match as far as the input allows.
          size_t mlen = kMinMatch;
          while (ip + mlen < len && raw[mpos + mlen] == raw[ip + mlen]) {
            ++mlen;
          }
          if (!emit(raw, anchor, ip - anchor, ip - mpos, mlen, out, out_cap,
                    &pos)) {
            return 0;
          }
          // Seed the table inside the match so long runs keep matching.
          for (size_t k = ip + 1; k + kMinMatch <= ip + mlen && k < len - 3;
               k += 7) {
            tab[hash32(read32(raw + k))] = static_cast<uint32_t>(k + 1);
          }
          ip += mlen;
          anchor = ip;
          continue;
        }
      }
      ++ip;
    }
    // Final literals-only sequence.
    if (!emit(raw, anchor, len - anchor, 0, 0, out, out_cap, &pos)) return 0;
    return pos;
  }

  bool decode(const uint8_t* enc, size_t enc_len, uint8_t* out,
              size_t raw_len) const override {
    size_t ip = 0;
    size_t op = 0;
    while (op < raw_len || ip < enc_len) {
      if (ip >= enc_len) return false;
      const uint8_t token = enc[ip++];
      size_t lit = token >> 4;
      if (lit == 15 && !get_ext_len(enc, enc_len, &ip, &lit)) return false;
      if (ip + lit > enc_len || op + lit > raw_len) return false;
      std::memcpy(out + op, enc + ip, lit);
      ip += lit;
      op += lit;
      if (op == raw_len) {
        // Last sequence: literals only, token match nibble must be clear
        // and the stream must end here.
        return (token & 0x0F) == 0 && ip == enc_len;
      }
      if (ip + 2 > enc_len) return false;
      const size_t offset = enc[ip] | (size_t{enc[ip + 1]} << 8);
      ip += 2;
      size_t mlen = token & 0x0F;
      if (mlen == 15 && !get_ext_len(enc, enc_len, &ip, &mlen)) return false;
      mlen += kMinMatch;
      if (offset == 0 || offset > op || op + mlen > raw_len) return false;
      // Byte-wise copy: overlapping matches (offset < mlen) replicate runs.
      const uint8_t* src = out + op - offset;
      for (size_t i = 0; i < mlen; ++i) out[op + i] = src[i];
      op += mlen;
    }
    return op == raw_len;
  }

 private:
  static bool emit(const uint8_t* raw, size_t lit_start, size_t lit,
                   size_t offset, size_t mlen, uint8_t* out, size_t cap,
                   size_t* pos) {
    const size_t lit_nib = lit < 15 ? lit : 15;
    size_t match_nib = 0;
    if (mlen != 0) {
      const size_t stored = mlen - kMinMatch;
      match_nib = stored < 15 ? stored : 15;
    }
    if (*pos >= cap) return false;
    out[(*pos)++] = static_cast<uint8_t>((lit_nib << 4) | match_nib);
    if (lit_nib == 15 && !put_ext_len(lit - 15, out, cap, pos)) return false;
    if (*pos + lit > cap) return false;
    std::memcpy(out + *pos, raw + lit_start, lit);
    *pos += lit;
    if (mlen == 0) return true;  // final literals-only sequence
    if (*pos + 2 > cap) return false;
    out[(*pos)++] = static_cast<uint8_t>(offset & 0xFF);
    out[(*pos)++] = static_cast<uint8_t>(offset >> 8);
    if (match_nib == 15 &&
        !put_ext_len(mlen - kMinMatch - 15, out, cap, pos)) {
      return false;
    }
    return true;
  }
};

const NoneCodec g_none;
const LzbCodec g_lzb;

}  // namespace

const Codec* codec_by_id(uint32_t id) {
  switch (id) {
    case kCodecLzb:
      return &g_lzb;
    default:
      return nullptr;
  }
}

const Codec* codec_by_name(const std::string& name) {
  if (name == "lzb") return &g_lzb;
  if (name == "none") return &g_none;
  return nullptr;
}

const char* codec_name(uint32_t id) {
  switch (id) {
    case kCodecNone:
      return "none";
    case kCodecLzb:
      return "lzb";
    default:
      return "?";
  }
}

bool parse_codec(const std::string& name, uint32_t* id) {
  if (name.empty() || name == "none") {
    *id = kCodecNone;
    return true;
  }
  if (name == "lzb") {
    *id = kCodecLzb;
    return true;
  }
  return false;
}

}  // namespace crpm::tier
