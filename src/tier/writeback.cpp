#include "tier/writeback.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "util/logging.h"

#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define CRPM_HAVE_URING 1
#endif

namespace crpm::tier {

namespace {

// pwritev with partial-write/EINTR handling. False on I/O error.
bool pwritev_all(int fd, std::vector<iovec> iov, uint64_t offset) {
  size_t i = 0;
  while (i < iov.size()) {
    ssize_t n = ::pwritev(fd, iov.data() + i, static_cast<int>(iov.size() - i),
                          static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    offset += static_cast<uint64_t>(n);
    auto left = static_cast<size_t>(n);
    while (i < iov.size() && left >= iov[i].iov_len) {
      left -= iov[i].iov_len;
      ++i;
    }
    if (i < iov.size() && left > 0) {
      iov[i].iov_base = static_cast<uint8_t*>(iov[i].iov_base) + left;
      iov[i].iov_len -= left;
    }
  }
  return true;
}

// In-order completion watermark shared by the async engines: jobs may
// finish out of order, done(t) only advances contiguously.
class CompletionTracker {
 public:
  void mark(uint64_t ticket, bool ok) {
    std::function<void()> sig;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!ok) failed_ = true;
      finished_.insert(ticket);
      while (finished_.count(upto_ + 1) != 0) {
        finished_.erase(++upto_);
      }
      sig = signal_;
    }
    cv_.notify_all();
    if (sig) sig();
  }
  bool done(uint64_t ticket) const {
    std::lock_guard<std::mutex> lk(mu_);
    return upto_ >= ticket;
  }
  bool wait(uint64_t ticket) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return upto_ >= ticket; });
    return !failed_;
  }
  bool ok() const {
    std::lock_guard<std::mutex> lk(mu_);
    return !failed_;
  }
  void set_signal(std::function<void()> fn) {
    std::lock_guard<std::mutex> lk(mu_);
    signal_ = std::move(fn);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<uint64_t> finished_;
  uint64_t upto_ = 0;
  bool failed_ = false;
  std::function<void()> signal_;
};

class SyncEngine final : public WritebackEngine {
 public:
  const char* name() const override { return "sync"; }

  uint64_t submit(int fd, uint64_t offset, std::vector<iovec> iov,
                  uint64_t bytes, bool sync) override {
    const uint64_t t = ++last_;
    bool ok = pwritev_all(fd, std::move(iov), offset);
    if (ok && sync) ok = ::fdatasync(fd) == 0;
    st_.jobs++;
    st_.bytes += bytes;
    if (sync) st_.syncs++;
    st_.inflight_hwm = st_.inflight_hwm ? st_.inflight_hwm : 1;
    tracker_.mark(t, ok);
    return t;
  }
  bool done(uint64_t ticket) const override { return tracker_.done(ticket); }
  bool wait(uint64_t ticket) override { return tracker_.wait(ticket); }
  bool ok() const override { return tracker_.ok(); }
  void set_signal(std::function<void()> fn) override {
    tracker_.set_signal(std::move(fn));
  }
  WritebackStats stats() const override { return st_; }

 private:
  uint64_t last_ = 0;
  WritebackStats st_;  // submitter thread only
  CompletionTracker tracker_;
};

class ThreadPoolEngine final : public WritebackEngine {
 public:
  explicit ThreadPoolEngine(uint32_t workers) {
    if (workers == 0) workers = 1;
    for (uint32_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~ThreadPoolEngine() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  const char* name() const override { return "threads"; }

  uint64_t submit(int fd, uint64_t offset, std::vector<iovec> iov,
                  uint64_t bytes, bool sync) override {
    Job j{++last_, fd, offset, std::move(iov), bytes, sync};
    uint64_t t = j.ticket;
    {
      std::lock_guard<std::mutex> lk(mu_);
      st_.jobs++;
      st_.bytes += bytes;
      if (sync) st_.syncs++;
      ++inflight_;
      if (inflight_ > st_.inflight_hwm) st_.inflight_hwm = inflight_;
      jobs_.push_back(std::move(j));
    }
    cv_.notify_one();
    return t;
  }
  bool done(uint64_t ticket) const override { return tracker_.done(ticket); }
  bool wait(uint64_t ticket) override { return tracker_.wait(ticket); }
  bool ok() const override { return tracker_.ok(); }
  void set_signal(std::function<void()> fn) override {
    tracker_.set_signal(std::move(fn));
  }
  WritebackStats stats() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return st_;
  }

 private:
  struct Job {
    uint64_t ticket;
    int fd;
    uint64_t offset;
    std::vector<iovec> iov;
    uint64_t bytes;
    bool sync;
  };

  void worker() {
    for (;;) {
      Job j;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
        // Drain every queued job even when stopping: tickets must
        // complete or waiters deadlock.
        if (jobs_.empty()) return;
        j = std::move(jobs_.front());
        jobs_.pop_front();
      }
      bool ok = pwritev_all(j.fd, std::move(j.iov), j.offset);
      if (ok && j.sync) ok = ::fdatasync(j.fd) == 0;
      {
        std::lock_guard<std::mutex> lk(mu_);
        --inflight_;
      }
      tracker_.mark(j.ticket, ok);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  std::vector<std::thread> threads_;
  uint64_t last_ = 0;  // submitter thread only
  uint64_t inflight_ = 0;
  bool stop_ = false;
  WritebackStats st_;
  CompletionTracker tracker_;
};

#ifdef CRPM_HAVE_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// io_uring over raw syscalls. One WRITEV SQE per batch, hard-linked to an
// FSYNC(DATASYNC) SQE when the batch syncs; a reaper thread harvests CQEs
// and feeds the in-order tracker. user_data = ticket << 1 | is_fsync.
class UringEngine final : public WritebackEngine {
 public:
  // Use create(); a failed setup leaves ring_fd_ < 0.
  UringEngine() {
    io_uring_params p{};
    ring_fd_ = sys_io_uring_setup(kEntries, &p);
    if (ring_fd_ < 0) return;

    sq_ring_sz_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_sz_ > sq_ring_sz_) sq_ring_sz_ = cq_ring_sz_;

    sq_ring_ = ::mmap(nullptr, sq_ring_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      teardown();
      return;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_sz_ = 0;  // unmapped separately
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        teardown();
        return;
      }
    }
    sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      teardown();
      return;
    }

    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    reaper_ = std::thread([this] { reap(); });
  }

  ~UringEngine() override {
    if (reaper_.joinable()) {
      stop_.store(true, std::memory_order_release);
      {
        // A NOP wakes the reaper out of its GETEVENTS sleep.
        std::lock_guard<std::mutex> lk(sq_mu_);
        io_uring_sqe* sqe = next_sqe();
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_NOP;
        sqe->user_data = 0;
        flush_sq(1);
      }
      reaper_.join();
    }
    teardown();
  }

  bool valid() const { return ring_fd_ >= 0; }
  const char* name() const override { return "uring"; }

  uint64_t submit(int fd, uint64_t offset, std::vector<iovec> iov,
                  uint64_t bytes, bool sync) override {
    const uint64_t t = ++last_;
    {
      std::lock_guard<std::mutex> lk(jobs_mu_);
      Pending& pend = pending_[t];
      pend.iov = std::move(iov);
      pend.cqes_left = sync ? 2 : 1;
      pend.bytes = bytes;
      std::lock_guard<std::mutex> slk(sq_mu_);
      io_uring_sqe* sqe = next_sqe();
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_WRITEV;
      sqe->fd = fd;
      sqe->off = offset;
      sqe->addr = reinterpret_cast<uint64_t>(pend.iov.data());
      sqe->len = static_cast<uint32_t>(pend.iov.size());
      sqe->user_data = t << 1;
      if (sync) {
        sqe->flags |= IOSQE_IO_LINK;
        io_uring_sqe* fsqe = next_sqe();
        std::memset(fsqe, 0, sizeof(*fsqe));
        fsqe->opcode = IORING_OP_FSYNC;
        fsqe->fd = fd;
        fsqe->fsync_flags = IORING_FSYNC_DATASYNC;
        fsqe->user_data = (t << 1) | 1;
      }
      flush_sq(sync ? 2 : 1);
      st_.jobs++;
      st_.bytes += bytes;
      if (sync) st_.syncs++;
      ++inflight_;
      if (inflight_ > st_.inflight_hwm) st_.inflight_hwm = inflight_;
    }
    return t;
  }

  bool done(uint64_t ticket) const override { return tracker_.done(ticket); }
  bool wait(uint64_t ticket) override { return tracker_.wait(ticket); }
  bool ok() const override { return tracker_.ok(); }
  void set_signal(std::function<void()> fn) override {
    tracker_.set_signal(std::move(fn));
  }
  WritebackStats stats() const override {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    return st_;
  }

 private:
  // Ample headroom over any sane ring_depth; the archive writer bounds
  // inflight batches well below kEntries/2 (two SQEs per batch).
  static constexpr unsigned kEntries = 64;

  struct Pending {
    std::vector<iovec> iov;
    int cqes_left = 0;
    uint64_t bytes = 0;
    bool failed = false;
  };

  io_uring_sqe* next_sqe() {
    // Single submitter + kEntries sized for the bounded ring: a free SQE
    // always exists by construction. pending_tail_ is the local tail so a
    // two-SQE batch gets two distinct slots before one flush.
    unsigned idx = pending_tail_ & sq_mask_;
    sq_array_[idx] = idx;
    ++pending_tail_;
    return &sqes_[idx];
  }

  void flush_sq(unsigned n) {
    __atomic_store_n(sq_tail_, pending_tail_, __ATOMIC_RELEASE);
    int r = sys_io_uring_enter(ring_fd_, n, 0, 0);
    CRPM_CHECK(r >= 0 || errno == EINTR, "io_uring_enter(submit) failed: %s",
               std::strerror(errno));
  }

  void reap() {
    for (;;) {
      unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
      unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        if (stop_.load(std::memory_order_acquire)) return;
        int r = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
          return;
        }
        continue;
      }
      while (head != tail) {
        const io_uring_cqe& cqe = cqes_[head & cq_mask_];
        const uint64_t ud = cqe.user_data;
        const int32_t res = cqe.res;
        ++head;
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
        if (ud == 0) continue;  // shutdown NOP
        const uint64_t ticket = ud >> 1;
        const bool is_fsync = (ud & 1) != 0;
        bool finished = false;
        bool job_ok = false;
        {
          std::lock_guard<std::mutex> lk(jobs_mu_);
          auto it = pending_.find(ticket);
          if (it == pending_.end()) continue;
          Pending& pend = it->second;
          if (is_fsync ? res != 0
                       : res < 0 || uint64_t(res) != pend.bytes) {
            pend.failed = true;
          }
          if (--pend.cqes_left == 0) {
            finished = true;
            job_ok = !pend.failed;
            pending_.erase(it);
            --inflight_;
          }
        }
        if (finished) tracker_.mark(ticket, job_ok);
      }
    }
  }

  void teardown() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_sz_);
    if (cq_ring_sz_ != 0 && cq_ring_ != nullptr && cq_ring_ != MAP_FAILED) {
      ::munmap(cq_ring_, cq_ring_sz_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_sz_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
    ring_fd_ = -1;
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  size_t sq_ring_sz_ = 0;
  size_t cq_ring_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned pending_tail_ = 0;

  std::mutex sq_mu_;  // SQ manipulation (submit thread + dtor NOP)
  mutable std::mutex jobs_mu_;
  std::map<uint64_t, Pending> pending_;
  uint64_t last_ = 0;  // submitter thread only
  uint64_t inflight_ = 0;
  WritebackStats st_;
  std::atomic<bool> stop_{false};
  std::thread reaper_;
  CompletionTracker tracker_;
};

#endif  // CRPM_HAVE_URING

}  // namespace

std::unique_ptr<WritebackEngine> WritebackEngine::create(
    const std::string& kind, uint32_t workers) {
  if (kind == "threads") {
    return std::make_unique<ThreadPoolEngine>(workers);
  }
  if (kind == "uring" || kind == "auto") {
#ifdef CRPM_HAVE_URING
    auto u = std::make_unique<UringEngine>();
    if (u->valid()) return u;
#endif
    if (kind == "uring") {
      CRPM_LOG_WARN(
          "io_uring unavailable (kernel/sandbox); archive writeback falls "
          "back to the worker pool");
    }
    return std::make_unique<ThreadPoolEngine>(workers);
  }
  if (kind != "sync" && !kind.empty()) {
    CRPM_LOG_WARN("unknown writeback engine '%s'; using sync", kind.c_str());
  }
  return std::make_unique<SyncEngine>();
}

}  // namespace crpm::tier
