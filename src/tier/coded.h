// Coded archive frames: per-frame codec negotiation over the snapshot
// archive format (snapshot/format.h, version 2).
//
// encode_frame() takes the exact serialized bytes of a plain frame and
// produces a coded frame — outer FrameHeader (same epoch/roots/block
// count, kind switched to the coded variant), a CodedExtent carrying the
// codec id and the dual CRC (raw_crc over the plain frame, encoded_crc
// over the codec output), the encoded bytes, and a FrameFooter whose
// payload_crc repeats encoded_crc. It refuses (returns false) whenever
// coding would not shrink the frame to at most min_ratio of its plain
// size — negotiation, not failure: the caller appends the plain frame.
//
// decode_frame() is the exact inverse and verifies every CRC on the way:
// header, extent, encoded bytes, and — after decoding — the raw CRC of
// the reconstructed plain frame, whose records still carry their own
// per-record CRCs for the reader's existing verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snapshot/format.h"

namespace crpm::tier {

// Plain frame bytes -> coded frame bytes. False when codec_id is
// none/unknown or the encode does not reach min_ratio.
bool encode_frame(const uint8_t* plain, size_t plain_len, uint32_t codec_id,
                  double min_ratio, std::vector<uint8_t>* out);

// Validates a complete coded frame in memory (header CRC, extent CRC,
// encoded CRC, footer) without decoding. `len` must be the exact frame
// size. Optionally reports the extent.
bool coded_frame_valid(const uint8_t* frame, size_t len,
                       snapshot::CodedExtent* extent_out = nullptr);

// Coded frame bytes -> the exact plain frame bytes. Verifies the dual CRC
// (encoded before decode, raw after). False on any damage.
bool decode_frame(const uint8_t* frame, size_t len,
                  std::vector<uint8_t>* plain_out);

}  // namespace crpm::tier
