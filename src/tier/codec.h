// Pluggable per-frame codecs for the archive tiering layer.
//
// A codec transforms the serialized bytes of one archive frame; the
// negotiation is per frame (src/tier/coded.h): the writer tries the
// configured codec and keeps the plain frame whenever the encode does not
// shrink it enough, so a codec only ever has to win, never to round-trip
// incompressible input at a loss. Codec ids are part of the on-disk
// format (CodedExtent::codec) and must never be renumbered.
//
// kCodecLzb is a self-contained LZ77 block compressor in the LZ4 family
// (greedy hash-table matcher, token byte with 4-bit literal/match length
// nibbles, 2-byte little-endian match offsets). It is format-compatible
// with nothing but itself — the point is zero external dependencies with
// LZ4-class speed on checkpoint payloads, which are dominated by runs and
// repeated structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace crpm::tier {

inline constexpr uint32_t kCodecNone = 0;
inline constexpr uint32_t kCodecLzb = 1;

class Codec {
 public:
  virtual ~Codec() = default;
  virtual uint32_t id() const = 0;
  virtual const char* name() const = 0;
  // Upper bound on encode() output for `raw` input bytes.
  virtual size_t max_encoded_bytes(size_t raw) const = 0;
  // Encodes raw[0..len) into out[0..out_cap). Returns the encoded size,
  // or 0 when the input does not fit the budget (caller keeps the raw
  // bytes — returning 0 is negotiation, not an error).
  virtual size_t encode(const uint8_t* raw, size_t len, uint8_t* out,
                        size_t out_cap) const = 0;
  // Decodes enc[0..enc_len) into exactly raw_len bytes at out. False on
  // malformed input (never reads/writes out of bounds).
  virtual bool decode(const uint8_t* enc, size_t enc_len, uint8_t* out,
                      size_t raw_len) const = 0;
};

// Registry lookups; nullptr for unknown ids/names. codec_by_id(kCodecNone)
// is nullptr on purpose: "none" means "do not code the frame".
const Codec* codec_by_id(uint32_t id);
const Codec* codec_by_name(const std::string& name);
const char* codec_name(uint32_t id);  // "none" / "lzb" / "?"
bool parse_codec(const std::string& name, uint32_t* id);

}  // namespace crpm::tier
