#include "tier/coded.h"

#include <cstring>

#include "tier/codec.h"

namespace crpm::tier {

using snapshot::CodedExtent;
using snapshot::FrameFooter;
using snapshot::FrameHeader;

bool encode_frame(const uint8_t* plain, size_t plain_len, uint32_t codec_id,
                  double min_ratio, std::vector<uint8_t>* out) {
  const Codec* codec = codec_by_id(codec_id);
  if (codec == nullptr || plain_len < sizeof(FrameHeader) + sizeof(FrameFooter)) {
    return false;
  }
  FrameHeader fh;
  std::memcpy(&fh, plain, sizeof(fh));
  if (snapshot::is_coded_kind(fh.kind)) return false;  // never double-code

  std::vector<uint8_t> enc(codec->max_encoded_bytes(plain_len));
  const size_t enc_len = codec->encode(plain, plain_len, enc.data(), enc.size());
  if (enc_len == 0) return false;
  const uint64_t total = snapshot::coded_frame_bytes(enc_len);
  // The whole coded frame (framing overhead included) must beat the plain
  // frame by the configured margin, or the plain frame wins.
  if (double(total) > min_ratio * double(plain_len)) return false;

  out->resize(total);
  uint8_t* p = out->data();

  fh.kind = fh.kind == snapshot::kDeltaFrame ? snapshot::kCodedDeltaFrame
                                             : snapshot::kCodedBaseFrame;
  fh.header_crc = crc32(&fh, offsetof(FrameHeader, header_crc));
  std::memcpy(p, &fh, sizeof(fh));
  p += sizeof(fh);

  CodedExtent ce;
  ce.codec = codec_id;
  ce.raw_bytes = plain_len;
  ce.encoded_bytes = enc_len;
  ce.raw_crc = crc32(plain, plain_len);
  ce.encoded_crc = crc32(enc.data(), enc_len);
  ce.extent_crc = crc32(&ce, offsetof(CodedExtent, extent_crc));
  std::memcpy(p, &ce, sizeof(ce));
  p += sizeof(ce);

  std::memcpy(p, enc.data(), enc_len);
  p += enc_len;

  FrameFooter ff;
  ff.epoch = fh.epoch;
  ff.frame_bytes = total;
  ff.payload_crc = ce.encoded_crc;
  ff.footer_crc = crc32(&ff, offsetof(FrameFooter, footer_crc));
  std::memcpy(p, &ff, sizeof(ff));
  return true;
}

namespace {

// Shared structural walk: header/extent/footer parse + CRC checks. Fills
// `ce` and returns a pointer to the encoded bytes, or nullptr.
const uint8_t* parse_coded(const uint8_t* frame, size_t len, CodedExtent* ce) {
  if (len < sizeof(FrameHeader) + sizeof(CodedExtent) + sizeof(FrameFooter)) {
    return nullptr;
  }
  FrameHeader fh;
  std::memcpy(&fh, frame, sizeof(fh));
  if (fh.marker != snapshot::kFrameMarker ||
      !snapshot::is_coded_kind(fh.kind) ||
      fh.header_crc != crc32(&fh, offsetof(FrameHeader, header_crc))) {
    return nullptr;
  }
  std::memcpy(ce, frame + sizeof(fh), sizeof(*ce));
  if (ce->marker != snapshot::kExtentMarker ||
      ce->extent_crc != crc32(ce, offsetof(CodedExtent, extent_crc))) {
    return nullptr;
  }
  if (snapshot::coded_frame_bytes(ce->encoded_bytes) != len) return nullptr;
  const uint8_t* enc = frame + sizeof(FrameHeader) + sizeof(CodedExtent);
  if (ce->encoded_crc != crc32(enc, ce->encoded_bytes)) return nullptr;
  FrameFooter ff;
  std::memcpy(&ff, frame + len - sizeof(ff), sizeof(ff));
  if (ff.marker != snapshot::kFooterMarker || ff.epoch != fh.epoch ||
      ff.frame_bytes != len || ff.payload_crc != ce->encoded_crc ||
      ff.footer_crc != crc32(&ff, offsetof(FrameFooter, footer_crc))) {
    return nullptr;
  }
  return enc;
}

}  // namespace

bool coded_frame_valid(const uint8_t* frame, size_t len,
                       CodedExtent* extent_out) {
  CodedExtent ce;
  if (parse_coded(frame, len, &ce) == nullptr) return false;
  if (extent_out != nullptr) *extent_out = ce;
  return true;
}

bool decode_frame(const uint8_t* frame, size_t len,
                  std::vector<uint8_t>* plain_out) {
  CodedExtent ce;
  const uint8_t* enc = parse_coded(frame, len, &ce);
  if (enc == nullptr) return false;
  const Codec* codec = codec_by_id(ce.codec);
  if (codec == nullptr) return false;
  plain_out->resize(ce.raw_bytes);
  if (!codec->decode(enc, ce.encoded_bytes, plain_out->data(),
                     ce.raw_bytes)) {
    return false;
  }
  return crc32(plain_out->data(), plain_out->size()) == ce.raw_crc;
}

}  // namespace crpm::tier
