// Cold tier: compressed base frames of retired epochs.
//
// When compaction folds the hot archive's delta chain, every epoch older
// than the fold point leaves the hot file. With the cold tier enabled the
// writer first lands the fold state as a standalone one-frame archive
//
//   <archive>.cold/base-<epoch 016x>.crpmsnap
//
// written with compactor.cpp semantics: tmp file, write, fdatasync,
// atomic rename — a crash mid-store leaves at worst a stale tmp (removed)
// and never a torn cold base. Each cold file is itself a valid snapshot
// archive (header + one, usually coded, base frame), so ArchiveReader /
// snapshot::read_state / crpm_inspect handle it with no special casing;
// the restore path falls back here for epochs the hot archive no longer
// holds. ReplicaStore reuses this layout for cold bases shipped via the
// writer's cold observer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace crpm::tier {

struct ColdEntry {
  uint64_t epoch = 0;
  std::string path;
  uint64_t bytes = 0;
};

class ColdTier {
 public:
  // `dir` as produced by dir_for(); created lazily on first store.
  explicit ColdTier(std::string dir) : dir_(std::move(dir)) {}

  static std::string dir_for(const std::string& archive_path) {
    return archive_path + ".cold";
  }
  static std::string base_name(uint64_t epoch);

  const std::string& dir() const { return dir_; }

  // Writes via `write_fn(fd, buf, len)` (so the archive writer's crash
  // budget and file-op hook apply), fdatasyncs, renames. False (with err)
  // on I/O failure or an aborted write_fn; a false return never leaves a
  // visible cold base. Prunes oldest bases beyond `keep` (0 = keep all)
  // after a successful store.
  using WriteFn = std::function<bool(int fd, const void* buf, size_t len)>;
  bool store(uint64_t epoch, const void* header, size_t header_len,
             const void* frame, size_t frame_len, const WriteFn& write_fn,
             uint32_t keep, std::string* err);

  // Cold bases under `dir`, ascending by epoch. Unparseable names are
  // skipped; intactness is the reader's job.
  static std::vector<ColdEntry> list(const std::string& dir);
  // Convenience: list for an archive path.
  static std::vector<ColdEntry> list_for_archive(const std::string& path) {
    return list(dir_for(path));
  }

 private:
  std::string dir_;
};

}  // namespace crpm::tier
