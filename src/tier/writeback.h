// Async writeback engines for the archive batch ring.
//
// The archive writer submits one job per group-commit batch: a vector of
// frame buffers written contiguously at an explicit file offset, followed
// (optionally) by an fdatasync. Jobs complete strictly in submission
// order — an engine may perform the I/O out of order internally, but
// done()/wait() expose a contiguous completion watermark, so the caller
// can fire its frame observers and stats in epoch order and never ahead
// of durability.
//
// Engines:
//   * sync     write + fdatasync inline on the submitting thread; the
//              ticket is complete when submit() returns. The default, and
//              bit-for-bit the pre-tiering archive behavior.
//   * threads  a small worker pool performing pwritev + fdatasync; the
//              submitting (SCHED_IDLE) writer thread never blocks on
//              device latency until the ring fills.
//   * uring    io_uring via raw syscalls (no liburing): one WRITEV SQE
//              hard-linked to an FSYNC(DATASYNC) SQE per batch, completions
//              harvested by a reaper thread. Built only when
//              <linux/io_uring.h> exists; construction falls back to the
//              worker pool when the kernel or sandbox refuses the setup
//              syscall (EPERM/ENOSYS are common in containers).
//
// Single submitter: submit() must be called from one thread (the archive
// writer thread). done()/wait()/stats() are safe from any thread.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace crpm::tier {

struct WritebackStats {
  uint64_t jobs = 0;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
  uint64_t inflight_hwm = 0;
};

class WritebackEngine {
 public:
  virtual ~WritebackEngine() = default;

  // The engine actually running ("sync", "threads", "uring") — may differ
  // from the requested kind after fallback.
  virtual const char* name() const = 0;

  // Writes `iov` (totalling `bytes`) at `offset` on `fd`, then fdatasyncs
  // when `sync`. The iovec base memory must stay valid until the returned
  // ticket completes. Tickets start at 1 and ascend by 1.
  virtual uint64_t submit(int fd, uint64_t offset, std::vector<iovec> iov,
                          uint64_t bytes, bool sync) = 0;

  // True once every ticket <= `ticket` has completed.
  virtual bool done(uint64_t ticket) const = 0;

  // Blocks until done(ticket); returns ok().
  virtual bool wait(uint64_t ticket) = 0;

  // False after any job failed (I/O error or short write). A failed
  // engine still completes tickets so waiters make progress.
  virtual bool ok() const = 0;

  // Invoked (from an engine thread) every time the completion watermark
  // advances; wake the writer's condition variable here. Set before the
  // first submit.
  virtual void set_signal(std::function<void()> fn) = 0;

  virtual WritebackStats stats() const = 0;

  // kind: "sync" | "threads" | "uring" | "auto". Never fails: unknown
  // kinds and unavailable backends degrade (uring -> threads -> sync).
  static std::unique_ptr<WritebackEngine> create(const std::string& kind,
                                                 uint32_t workers);
};

}  // namespace crpm::tier
