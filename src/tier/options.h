// Knobs for the archive tiering layer (codec negotiation, group commit,
// async writeback, cold tier). Defaults reproduce the pre-tiering archive
// behavior exactly: plain frames, one device write + fdatasync per epoch,
// synchronous writeback, no cold tier.
#pragma once

#include <cstdint>
#include <string>

#include "tier/codec.h"

namespace crpm::tier {

struct TierOptions {
  // Codec tried for every frame (kCodecNone = always plain). A frame is
  // coded only when the whole coded frame is at most codec_min_ratio of
  // the plain frame; otherwise the plain frame is appended.
  uint32_t codec = kCodecNone;
  double codec_min_ratio = 0.90;

  // Group commit: staged frames accumulate into one batch flushed with a
  // single device write + fdatasync once `group_epochs` frames or
  // `group_bytes` bytes are pending — or when the oldest pending frame
  // has waited `flush_deadline_us`, which bounds the durability latency
  // of a lone small epoch (crpm_kvd's durable-PUT ack path).
  uint32_t group_epochs = 1;
  uint64_t group_bytes = 4ull << 20;
  uint64_t flush_deadline_us = 2000;

  // Writeback engine draining the batch ring: "sync" (write+fsync on the
  // writer thread), "threads" (worker-pool pwritev), "uring" (raw io_uring
  // syscalls; falls back to threads when the kernel refuses), or "auto"
  // (uring if available, else threads).
  std::string writeback = "sync";
  uint32_t writeback_workers = 2;
  // Submitted-but-incomplete batches before the writer thread blocks on
  // the oldest completion (the staging ring bound).
  uint32_t ring_depth = 4;

  // Cold tier: at every compaction fold, the state at the fold epoch is
  // also written as a (codec-negotiated) base frame into `<archive>.cold/`
  // via tmp + fsync + atomic rename, so epochs the fold retires from the
  // hot archive stay restorable. cold_keep bounds retained cold bases
  // (0 = keep all).
  bool cold_enabled = false;
  uint32_t cold_keep = 0;
};

}  // namespace crpm::tier
