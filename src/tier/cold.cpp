#include "tier/cold.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace crpm::tier {

std::string ColdTier::base_name(uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "base-%016" PRIx64 ".crpmsnap", epoch);
  return buf;
}

bool ColdTier::store(uint64_t epoch, const void* header, size_t header_len,
                     const void* frame, size_t frame_len,
                     const WriteFn& write_fn, uint32_t keep,
                     std::string* err) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    if (err) *err = std::string("mkdir ") + dir_ + ": " + std::strerror(errno);
    return false;
  }
  const std::string final_path = dir_ + "/" + base_name(epoch);
  const std::string tmp = final_path + ".tmp";
  int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (err) *err = std::string("open ") + tmp + ": " + std::strerror(errno);
    return false;
  }
  bool ok = write_fn(fd, header, header_len) &&
            write_fn(fd, frame, frame_len);
  if (ok) ok = ::fdatasync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    if (err) *err = "cold base write failed or aborted";
    return false;
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    if (err) *err = std::string("rename: ") + std::strerror(errno);
    return false;
  }

  if (keep != 0) {
    auto entries = list(dir_);
    while (entries.size() > keep) {
      ::unlink(entries.front().path.c_str());
      entries.erase(entries.begin());
    }
  }
  return true;
}

std::vector<ColdEntry> ColdTier::list(const std::string& dir) {
  std::vector<ColdEntry> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    uint64_t epoch = 0;
    int consumed = 0;
    if (std::sscanf(e->d_name, "base-%16" SCNx64 ".crpmsnap%n", &epoch,
                    &consumed) != 1 ||
        e->d_name[consumed] != '\0') {
      continue;  // tmp files, dot entries, strangers
    }
    ColdEntry entry;
    entry.epoch = epoch;
    entry.path = dir + "/" + e->d_name;
    struct stat st{};
    if (::stat(entry.path.c_str(), &st) == 0) {
      entry.bytes = static_cast<uint64_t>(st.st_size);
    }
    out.push_back(std::move(entry));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const ColdEntry& a, const ColdEntry& b) {
              return a.epoch < b.epoch;
            });
  return out;
}

}  // namespace crpm::tier
