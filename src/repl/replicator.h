// ReplNode: one rank's end of the peer checkpoint replication protocol.
//
// Sender side: ArchiveWriter invokes the node's frame observer after each
// epoch frame is durably appended to the local archive (replication never
// runs ahead of local durability). The observer only enqueues the frame on
// a bounded queue — everything else happens on the node's sender thread,
// which streams the frame to the rank's R partners and drives a per-frame,
// per-partner ack/retry state machine:
//
//        enqueue            send                 ack from partner
//   frame ----> [pending] ----> [in flight, t/o] ------------------> done
//                   ^                |  retransmit after timeout,
//                   '----------------'  exponential backoff, until
//                                       acked or max_attempts
//
// The commit path is untouched: backpressure from a full queue lands on
// the (SCHED_IDLE) writer thread, and only propagates to the committing
// thread once the archive queue in front of it also fills.
//
// Receiver side: a service thread drains this rank's Channel inbox.
// Partner frames are validated and persisted through ReplicaStore (then
// acked); acks update the sender state machine; kQueryNewest/kPull serve
// recovery, reading either the rank's replica store or — when asked about
// the rank's own state — its local archive, so a recovering peer can also
// refill the replica files it lost.
//
// All handlers are idempotent (transport may duplicate and reorder) and
// every retry is counted, so tests can assert the fault injector actually
// bit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "core/container.h"
#include "repl/protocol.h"
#include "repl/replica_store.h"
#include "snapshot/writer.h"

namespace crpm::repl {

struct ReplConfig {
  // Partner count R: rank r streams to ranks r+1 .. r+R (mod nranks).
  int replicas = 1;
  // Directory persisting partner frames received by this rank.
  std::string store_dir;
  // This rank's own archive file; served when a recovering peer pulls this
  // rank's state to refill its replica store. Empty = serve replicas only.
  std::string local_archive;
  // Frames buffered for sending before the enqueuing (writer) thread
  // blocks. Backpressure, never data loss.
  uint32_t queue_depth = 16;
  // Initial retransmit timeout; doubles per retry up to max_backoff_us.
  uint64_t ack_timeout_us = 2000;
  double backoff = 2.0;
  uint64_t max_backoff_us = 64 * 1000;
  // Send attempts per frame per partner before giving up (graceful
  // degradation: the epoch is counted dropped for that partner and the
  // stream continues). 0 = retry forever.
  uint32_t max_attempts = 0;
  // fdatasync replica-store appends (the durable-replica guarantee).
  bool fsync_store = true;
  // Cold-tier bases retained per peer when the partner ships them
  // (0 = keep all).
  uint32_t cold_keep = 0;
};

struct ReplNodeStats {
  // Sender.
  uint64_t frames_sent = 0;  // datagrams sent (first sends + retries)
  uint64_t bytes_sent = 0;
  uint64_t frames_acked = 0;     // (frame, partner) pairs acked
  uint64_t retries = 0;          // retransmissions
  uint64_t frames_given_up = 0;  // (frame, partner) pairs abandoned
  uint64_t queue_stall_ns = 0;   // enqueue time blocked on a full queue
  uint64_t queue_hwm = 0;
  // Receiver.
  uint64_t frames_stored = 0;
  uint64_t cold_stored = 0;    // cold-tier bases persisted
  uint64_t stale_frames = 0;   // duplicates re-acked
  uint64_t gap_rejects = 0;    // out-of-order deltas refused
  uint64_t invalid_msgs = 0;   // CRC/parse failures ignored
  uint64_t acks_sent = 0;
  uint64_t pulls_served = 0;
  uint64_t pull_frames_sent = 0;
};

class ReplNode {
 public:
  // The channel must outlive the node. The store directory is created and
  // any prior peer files adopted immediately.
  ReplNode(Channel& channel, int rank, ReplConfig cfg);
  ~ReplNode();

  ReplNode(const ReplNode&) = delete;
  ReplNode& operator=(const ReplNode&) = delete;

  // Registers this node as `w`'s frame observer and binds the container's
  // CrpmStats for the repl_* counters. The node must outlive the writer
  // (or the writer be destroyed first — it detaches its observer then).
  void attach(Container& c, snapshot::ArchiveWriter& w);

  // Blocks until every enqueued frame is acked by (or abandoned for) all
  // partners. Call after ArchiveWriter::drain().
  void flush();

  int rank() const { return rank_; }
  const ReplConfig& config() const { return cfg_; }
  std::vector<int> partners() const {
    return partners_of(rank_, channel_.nranks(), cfg_.replicas);
  }

  // Newest epoch e of this rank such that every frame up to e is acked by
  // `partner` (the sender-side mirror of the replica's durable state).
  uint64_t newest_acked(int partner) const;

  ReplicaStore& store() { return store_; }
  ReplNodeStats stats() const;

  // --- recovery client (app thread) ----------------------------------
  // Newest epoch of `origin`'s state that `partner` can serve; false on
  // timeout (partner unreachable).
  bool query_newest(int partner, int origin, uint64_t* newest);
  // Pulls every frame needed to restore (`origin`, `epoch`) from `partner`
  // into a fresh archive file at `dest_path`.
  bool pull(int partner, int origin, uint64_t epoch,
            const std::string& dest_path, std::string* err);

  // Direct enqueue, used by the writer observer and by tests.
  void on_frame(uint64_t epoch, uint32_t kind, const uint8_t* frame,
                size_t len);
  // Cold-tier feed (the writer's cold observer): ships the fold base to
  // every partner with the same ack/retry machinery as epoch frames.
  void on_cold_base(uint64_t epoch, const uint8_t* frame, size_t len);

 private:
  struct PartnerState {
    bool acked = false;
    bool given_up = false;
    uint32_t attempts = 0;
    uint64_t next_send_us = 0;
    uint64_t backoff_us = 0;
  };
  struct Outgoing {
    uint64_t seq = 0;
    uint64_t epoch = 0;
    uint32_t kind = kReplMagic;  // frame kind, not msg type
    bool cold = false;           // ships as kColdBase instead of kFrame
    std::vector<uint8_t> bytes;
    std::vector<PartnerState> per_partner;
    bool done() const {
      for (const auto& p : per_partner) {
        if (!p.acked && !p.given_up) return false;
      }
      return true;
    }
  };
  struct AckTracker {
    uint64_t contig_seq = 0;  // all seqs <= this acked
    uint64_t newest_acked_epoch = 0;
    std::map<uint64_t, uint64_t> ahead;  // seq -> epoch, acked out of order
  };
  struct PendingReq {
    bool active = false;
    uint32_t type = 0;
    uint32_t nonce = 0;
    int partner = -1;
    int origin = -1;
    bool failed = false;  // partner answered "cannot serve"
    uint64_t newest = 0;
    bool newest_valid = false;
    uint64_t total = 0;
    bool total_valid = false;
    uint64_t block_size = 0, region_size = 0, segment_size = 0;
    std::map<uint64_t, std::vector<uint8_t>> frames;  // idx -> bytes
  };

  void enqueue(Outgoing&& o);
  void sender();
  void service();
  void handle(Message&& m);
  void handle_frame(const ReplMsgHeader& h, const uint8_t* body, size_t len,
                    int src);
  void handle_cold(const ReplMsgHeader& h, const uint8_t* body, size_t len,
                   int src);
  void handle_ack(const ReplMsgHeader& h, int src);
  void handle_query(const ReplMsgHeader& h, int src);
  void handle_pull(const ReplMsgHeader& h, int src);
  void handle_pull_frame(const ReplMsgHeader& h, const uint8_t* body,
                         size_t len, int src);
  void send_msg(int dst, const ReplMsgHeader& h, const uint8_t* body,
                size_t len);
  uint64_t now_us() const;
  int partner_index(int rank) const;

  Channel& channel_;
  int rank_;
  ReplConfig cfg_;
  std::vector<int> partners_;
  ReplicaStore store_;
  CrpmStats* crpm_stats_ = nullptr;

  // Frame geometry, fixed at attach (or first test enqueue).
  uint64_t block_size_ = 0;
  uint64_t region_size_ = 0;
  uint64_t segment_size_ = 0;

  mutable std::mutex mu_;            // sender state
  std::condition_variable cv_send_;  // sender: work or earlier deadline
  std::condition_variable cv_space_;  // enqueue: queue full
  std::condition_variable cv_flush_;  // flush(): all done
  std::deque<Outgoing> out_;
  uint64_t next_seq_ = 0;
  std::map<int, AckTracker> ack_track_;  // partner rank -> tracker

  std::mutex req_mu_;  // recovery request/response state
  std::condition_variable cv_req_;
  PendingReq pending_;
  uint32_t next_nonce_ = 1;

  std::atomic<bool> stop_{false};
  std::thread sender_thread_;
  std::thread service_thread_;

  // Stats (several updater threads).
  std::atomic<uint64_t> st_sent_{0}, st_bytes_{0}, st_acked_{0},
      st_retries_{0}, st_given_up_{0}, st_stall_ns_{0}, st_qhwm_{0},
      st_stored_{0}, st_cold_stored_{0}, st_stale_{0}, st_gap_{0},
      st_invalid_{0}, st_acks_sent_{0}, st_pulls_{0}, st_pull_frames_{0};
};

}  // namespace crpm::repl
