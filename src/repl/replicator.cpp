#include "repl/replicator.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "snapshot/archive.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace crpm::repl {

using snapshot::ArchiveReader;

ReplNode::ReplNode(Channel& channel, int rank, ReplConfig cfg)
    : channel_(channel),
      rank_(rank),
      cfg_(std::move(cfg)),
      partners_(partners_of(rank, channel.nranks(), cfg_.replicas)),
      store_(cfg_.store_dir) {
  if (cfg_.queue_depth == 0) cfg_.queue_depth = 1;
  sender_thread_ = std::thread([this] { sender(); });
  service_thread_ = std::thread([this] { service(); });
}

ReplNode::~ReplNode() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    cv_send_.notify_all();
    cv_space_.notify_all();
    cv_flush_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(req_mu_);
    cv_req_.notify_all();
  }
  sender_thread_.join();
  service_thread_.join();
}

uint64_t ReplNode::now_us() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int ReplNode::partner_index(int rank) const {
  for (size_t i = 0; i < partners_.size(); ++i) {
    if (partners_[i] == rank) return static_cast<int>(i);
  }
  return -1;
}

void ReplNode::attach(Container& c, snapshot::ArchiveWriter& w) {
  block_size_ = c.geometry().block_size();
  region_size_ = c.geometry().main_region_size();
  segment_size_ = c.geometry().segment_size();
  crpm_stats_ = &c.stats();
  if (cfg_.local_archive.empty()) cfg_.local_archive = w.path();
  w.set_frame_observer(
      [this](uint64_t epoch, uint32_t kind, const uint8_t* frame,
             size_t len) { on_frame(epoch, kind, frame, len); });
  w.set_cold_observer(
      [this](uint64_t epoch, const uint8_t* frame, size_t len) {
        on_cold_base(epoch, frame, len);
      });
}

void ReplNode::on_frame(uint64_t epoch, uint32_t kind, const uint8_t* frame,
                        size_t len) {
  if (partners_.empty()) return;
  Outgoing o;
  o.epoch = epoch;
  o.kind = kind;
  o.bytes.assign(frame, frame + len);
  o.per_partner.resize(partners_.size());
  enqueue(std::move(o));
}

void ReplNode::on_cold_base(uint64_t epoch, const uint8_t* frame,
                            size_t len) {
  if (partners_.empty()) return;
  Outgoing o;
  o.epoch = epoch;
  o.cold = true;
  o.bytes.assign(frame, frame + len);
  o.per_partner.resize(partners_.size());
  enqueue(std::move(o));
}

void ReplNode::enqueue(Outgoing&& o) {
  std::unique_lock<std::mutex> lk(mu_);
  if (out_.size() >= cfg_.queue_depth) {
    Stopwatch sw;
    cv_space_.wait(lk, [&] {
      return out_.size() < cfg_.queue_depth ||
             stop_.load(std::memory_order_acquire);
    });
    uint64_t ns = sw.elapsed_ns();
    st_stall_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (crpm_stats_ != nullptr) crpm_stats_->add_repl_stall_ns(ns);
  }
  if (stop_.load(std::memory_order_acquire)) return;
  o.seq = ++next_seq_;
  out_.push_back(std::move(o));
  uint64_t depth = out_.size();
  uint64_t prev = st_qhwm_.load(std::memory_order_relaxed);
  while (depth > prev && !st_qhwm_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
  lk.unlock();
  cv_send_.notify_one();
}

void ReplNode::send_msg(int dst, const ReplMsgHeader& h, const uint8_t* body,
                        size_t len) {
  std::vector<uint8_t> wire = encode(h, body, len);
  channel_.send(rank_, dst, h.type, wire);
}

void ReplNode::sender() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t now = now_us();
    uint64_t next_deadline = ~uint64_t{0};
    bool popped = false;
    for (Outgoing& o : out_) {
      for (size_t i = 0; i < o.per_partner.size(); ++i) {
        PartnerState& p = o.per_partner[i];
        if (p.acked || p.given_up) continue;
        if (p.next_send_us > now) {
          if (p.next_send_us < next_deadline) next_deadline = p.next_send_us;
          continue;
        }
        if (cfg_.max_attempts != 0 && p.attempts >= cfg_.max_attempts) {
          p.given_up = true;
          st_given_up_.fetch_add(1, std::memory_order_relaxed);
          if (crpm_stats_ != nullptr) crpm_stats_->add_repl_frame_dropped();
          CRPM_LOG_WARN(
              "repl rank %d: giving up on epoch %llu -> rank %d after %u "
              "attempts",
              rank_, (unsigned long long)o.epoch, partners_[i], p.attempts);
          continue;
        }
        ReplMsgHeader h;
        h.type = o.cold ? kColdBase : kFrame;
        h.origin = static_cast<uint32_t>(rank_);
        h.epoch = o.epoch;
        h.block_size = block_size_;
        h.region_size = region_size_;
        h.segment_size = segment_size_;
        h.aux = o.seq;
        send_msg(partners_[i], h, o.bytes.data(), o.bytes.size());
        ++p.attempts;
        st_sent_.fetch_add(1, std::memory_order_relaxed);
        st_bytes_.fetch_add(o.bytes.size(), std::memory_order_relaxed);
        if (p.attempts > 1) {
          st_retries_.fetch_add(1, std::memory_order_relaxed);
          if (crpm_stats_ != nullptr) crpm_stats_->add_repl_retry();
        }
        if (crpm_stats_ != nullptr) {
          crpm_stats_->add_repl_frame_sent(o.bytes.size());
        }
        p.backoff_us = p.backoff_us == 0
                           ? cfg_.ack_timeout_us
                           : static_cast<uint64_t>(
                                 static_cast<double>(p.backoff_us) *
                                 cfg_.backoff);
        if (p.backoff_us > cfg_.max_backoff_us) {
          p.backoff_us = cfg_.max_backoff_us;
        }
        p.next_send_us = now + p.backoff_us;
        if (p.next_send_us < next_deadline) next_deadline = p.next_send_us;
      }
    }
    while (!out_.empty() && out_.front().done()) {
      out_.pop_front();
      popped = true;
    }
    if (popped) {
      cv_space_.notify_all();
      if (out_.empty()) cv_flush_.notify_all();
    }
    if (next_deadline == ~uint64_t{0}) {
      cv_send_.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) ||
               !out_.empty();
      });
      // Re-evaluate: new frames (or acks marking frames done) arrived.
      if (!out_.empty() && out_.front().done()) continue;
    } else {
      const uint64_t n2 = now_us();
      uint64_t sleep_us = next_deadline > n2 ? next_deadline - n2 : 1;
      cv_send_.wait_for(lk, std::chrono::microseconds(sleep_us));
    }
  }
}

void ReplNode::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_flush_.wait(lk, [&] {
    return out_.empty() || stop_.load(std::memory_order_acquire);
  });
}

uint64_t ReplNode::newest_acked(int partner) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = ack_track_.find(partner);
  return it == ack_track_.end() ? 0 : it->second.newest_acked_epoch;
}

// --- receive path ---------------------------------------------------------

void ReplNode::service() {
  Message m;
  while (!stop_.load(std::memory_order_acquire)) {
    if (channel_.recv(rank_, &m, 2000)) {
      handle(std::move(m));
    } else if (channel_.closed()) {
      // Drained and closed: nothing more will arrive; idle politely until
      // the node is destroyed.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void ReplNode::handle(Message&& m) {
  ReplMsgHeader h;
  const uint8_t* body = nullptr;
  size_t len = 0;
  if (!decode(m.payload, &h, &body, &len)) {
    st_invalid_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (h.type) {
    case kFrame:
      handle_frame(h, body, len, m.src);
      break;
    case kColdBase:
      handle_cold(h, body, len, m.src);
      break;
    case kAck:
      handle_ack(h, m.src);
      break;
    case kQueryNewest:
      handle_query(h, m.src);
      break;
    case kNewestResp:
    case kPullFrame:
      handle_pull_frame(h, body, len, m.src);
      break;
    case kPull:
      handle_pull(h, m.src);
      break;
    default:
      st_invalid_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ReplNode::handle_frame(const ReplMsgHeader& h, const uint8_t* body,
                            size_t len, int src) {
  if (body == nullptr || len == 0) {
    st_invalid_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  AppendVerdict v =
      store_.append(static_cast<int>(h.origin), h.epoch, h.block_size,
                    h.region_size, h.segment_size, body, len,
                    cfg_.fsync_store);
  switch (v) {
    case AppendVerdict::kStored:
      st_stored_.fetch_add(1, std::memory_order_relaxed);
      if (crpm_stats_ != nullptr) crpm_stats_->add_repl_frame_stored();
      break;
    case AppendVerdict::kStale:
      st_stale_.fetch_add(1, std::memory_order_relaxed);
      break;
    case AppendVerdict::kGap:
      st_gap_.fetch_add(1, std::memory_order_relaxed);
      return;  // no ack: the sender must land the missing epoch first
    case AppendVerdict::kInvalid:
      st_invalid_.fetch_add(1, std::memory_order_relaxed);
      return;
    case AppendVerdict::kError:
      return;
  }
  ReplMsgHeader ack;
  ack.type = kAck;
  ack.origin = h.origin;
  ack.epoch = h.epoch;
  ack.aux = h.aux;  // echo the sender's sequence number
  send_msg(src, ack, nullptr, 0);
  st_acks_sent_.fetch_add(1, std::memory_order_relaxed);
}

void ReplNode::handle_cold(const ReplMsgHeader& h, const uint8_t* body,
                           size_t len, int src) {
  if (body == nullptr || len == 0) {
    st_invalid_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Idempotent: re-storing an epoch atomically replaces an identical cold
  // base, so duplicates are stored-and-acked rather than special-cased.
  if (!store_.store_cold(static_cast<int>(h.origin), h.epoch, h.block_size,
                         h.region_size, h.segment_size, body, len,
                         cfg_.cold_keep)) {
    st_invalid_.fetch_add(1, std::memory_order_relaxed);
    return;  // no ack: validation or I/O failure, sender retries
  }
  st_cold_stored_.fetch_add(1, std::memory_order_relaxed);
  ReplMsgHeader ack;
  ack.type = kAck;
  ack.origin = h.origin;
  ack.epoch = h.epoch;
  ack.aux = h.aux;  // echo the sender's sequence number
  send_msg(src, ack, nullptr, 0);
  st_acks_sent_.fetch_add(1, std::memory_order_relaxed);
}

void ReplNode::handle_ack(const ReplMsgHeader& h, int src) {
  if (static_cast<int>(h.origin) != rank_) return;  // not our frame
  const int pi = partner_index(src);
  if (pi < 0) return;
  bool newly = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Outgoing& o : out_) {
      // Match by echoed sequence number, not epoch: a cold base shares its
      // epoch with the (long-acked) frame of the fold point.
      if (o.seq != h.aux || o.epoch != h.epoch) continue;
      PartnerState& p = o.per_partner[static_cast<size_t>(pi)];
      if (!p.acked) {
        p.acked = true;
        newly = true;
        AckTracker& t = ack_track_[src];
        t.ahead.emplace(o.seq, o.epoch);
        while (!t.ahead.empty() &&
               t.ahead.begin()->first == t.contig_seq + 1) {
          t.contig_seq = t.ahead.begin()->first;
          t.newest_acked_epoch = t.ahead.begin()->second;
          t.ahead.erase(t.ahead.begin());
        }
      }
      break;
    }
  }
  if (newly) {
    st_acked_.fetch_add(1, std::memory_order_relaxed);
    if (crpm_stats_ != nullptr) crpm_stats_->add_repl_frame_acked();
    cv_send_.notify_one();  // completed frames unblock space/flush waiters
  }
}

namespace {

// Frames (offset, length, epoch) needed to rebuild `epoch`: everything at
// or below it — restore replays from the newest base frame underneath.
struct ServableFrame {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

bool collect_frames(const std::string& path, uint64_t epoch,
                    std::vector<ServableFrame>* frames,
                    snapshot::ArchiveHeader* header) {
  ArchiveReader reader(path);
  if (!reader.ok() || !reader.restorable(epoch)) return false;
  *header = reader.scan().header;
  for (const auto& e : reader.scan().epochs) {
    if (e.epoch > epoch || !e.intact) continue;
    frames->push_back({e.file_offset, e.frame_bytes});
  }
  return !frames->empty();
}

}  // namespace

void ReplNode::handle_query(const ReplMsgHeader& h, int src) {
  const int origin = static_cast<int>(h.origin);
  uint64_t newest = 0;
  if (origin == rank_) {
    if (!cfg_.local_archive.empty()) {
      ArchiveReader reader(cfg_.local_archive);
      if (reader.ok()) reader.latest_restorable(&newest);
    }
  } else {
    newest = store_.newest_epoch(origin);
  }
  ReplMsgHeader resp;
  resp.type = kNewestResp;
  resp.origin = h.origin;
  resp.flags = h.flags;
  resp.aux = newest;
  send_msg(src, resp, nullptr, 0);
}

void ReplNode::handle_pull(const ReplMsgHeader& h, int src) {
  const int origin = static_cast<int>(h.origin);
  const std::string path = origin == rank_ ? cfg_.local_archive
                                           : store_.peer_path(origin);
  std::vector<ServableFrame> frames;
  snapshot::ArchiveHeader ah;
  const bool ok =
      !path.empty() && collect_frames(path, h.epoch, &frames, &ah);

  st_pulls_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    ReplMsgHeader resp;
    resp.type = kPullFrame;
    resp.origin = h.origin;
    resp.flags = h.flags;
    resp.epoch = h.epoch;
    resp.aux2 = 0;  // cannot serve
    send_msg(src, resp, nullptr, 0);
    return;
  }

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // puller times out and retries / tries another peer
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < frames.size(); ++i) {
    buf.resize(frames[i].bytes);
    ssize_t n = ::pread(fd, buf.data(), buf.size(),
                        static_cast<off_t>(frames[i].offset));
    if (n != static_cast<ssize_t>(buf.size())) break;
    ReplMsgHeader resp;
    resp.type = kPullFrame;
    resp.origin = h.origin;
    resp.flags = h.flags;
    resp.epoch = h.epoch;
    resp.block_size = ah.block_size;
    resp.region_size = ah.region_size;
    resp.segment_size = ah.segment_size;
    resp.aux = i;
    resp.aux2 = frames.size();
    send_msg(src, resp, buf.data(), buf.size());
    st_pull_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  ::close(fd);
}

void ReplNode::handle_pull_frame(const ReplMsgHeader& h, const uint8_t* body,
                                 size_t len, int src) {
  std::lock_guard<std::mutex> lk(req_mu_);
  if (!pending_.active || pending_.nonce != h.flags ||
      pending_.partner != src ||
      pending_.origin != static_cast<int>(h.origin)) {
    return;  // stale response from an earlier attempt
  }
  if (h.type == kNewestResp) {
    pending_.newest = h.aux;
    pending_.newest_valid = true;
  } else {
    if (h.aux2 == 0) {
      pending_.failed = true;
    } else {
      pending_.total = h.aux2;
      pending_.total_valid = true;
      pending_.block_size = h.block_size;
      pending_.region_size = h.region_size;
      pending_.segment_size = h.segment_size;
      if (body != nullptr && len != 0 &&
          pending_.frames.find(h.aux) == pending_.frames.end()) {
        pending_.frames.emplace(
            h.aux, std::vector<uint8_t>(body, body + len));
      }
    }
  }
  cv_req_.notify_all();
}

bool ReplNode::query_newest(int partner, int origin, uint64_t* newest) {
  ReplMsgHeader req;
  req.type = kQueryNewest;
  req.origin = static_cast<uint32_t>(origin);
  {
    std::lock_guard<std::mutex> lk(req_mu_);
    pending_ = PendingReq{};
    pending_.active = true;
    pending_.type = kQueryNewest;
    pending_.nonce = next_nonce_++;
    pending_.partner = partner;
    pending_.origin = origin;
    req.flags = pending_.nonce;
  }
  bool got = false;
  for (int attempt = 0; attempt < 16 && !got; ++attempt) {
    send_msg(partner, req, nullptr, 0);
    std::unique_lock<std::mutex> lk(req_mu_);
    cv_req_.wait_for(
        lk, std::chrono::microseconds(cfg_.ack_timeout_us * (attempt + 1)),
        [&] {
          return pending_.newest_valid ||
                 stop_.load(std::memory_order_acquire);
        });
    got = pending_.newest_valid;
    if (stop_.load(std::memory_order_acquire)) break;
  }
  std::lock_guard<std::mutex> lk(req_mu_);
  *newest = pending_.newest;
  pending_ = PendingReq{};
  return got;
}

bool ReplNode::pull(int partner, int origin, uint64_t epoch,
                    const std::string& dest_path, std::string* err) {
  ReplMsgHeader req;
  req.type = kPull;
  req.origin = static_cast<uint32_t>(origin);
  req.epoch = epoch;
  {
    std::lock_guard<std::mutex> lk(req_mu_);
    pending_ = PendingReq{};
    pending_.active = true;
    pending_.type = kPull;
    pending_.nonce = next_nonce_++;
    pending_.partner = partner;
    pending_.origin = origin;
    req.flags = pending_.nonce;
  }

  bool complete = false, failed = false;
  for (int attempt = 0; attempt < 32 && !complete && !failed; ++attempt) {
    send_msg(partner, req, nullptr, 0);
    std::unique_lock<std::mutex> lk(req_mu_);
    cv_req_.wait_for(
        lk, std::chrono::microseconds(cfg_.ack_timeout_us * (attempt + 2)),
        [&] {
          return pending_.failed ||
                 (pending_.total_valid &&
                  pending_.frames.size() == pending_.total) ||
                 stop_.load(std::memory_order_acquire);
        });
    failed = pending_.failed;
    complete =
        pending_.total_valid && pending_.frames.size() == pending_.total;
    if (stop_.load(std::memory_order_acquire)) break;
  }

  std::unique_lock<std::mutex> lk(req_mu_);
  if (!complete) {
    pending_ = PendingReq{};
    if (err != nullptr) {
      *err = failed ? "partner cannot serve the requested epoch"
                    : "pull timed out";
    }
    return false;
  }

  // Materialize the pulled chain as a local archive file; every frame is
  // CRC-verified again by the ArchiveReader that restores from it.
  std::string tmp = dest_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    pending_ = PendingReq{};
    if (err != nullptr) *err = "cannot write " + tmp;
    return false;
  }
  snapshot::ArchiveHeader ah = snapshot::make_header(
      pending_.block_size, pending_.region_size, pending_.segment_size);
  bool wok = std::fwrite(&ah, 1, sizeof(ah), f) == sizeof(ah);
  for (const auto& [idx, bytes] : pending_.frames) {
    (void)idx;
    wok = wok && std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                     bytes.size();
  }
  wok = std::fflush(f) == 0 && wok;
  ::fdatasync(::fileno(f));
  std::fclose(f);
  pending_ = PendingReq{};
  lk.unlock();
  if (!wok || std::rename(tmp.c_str(), dest_path.c_str()) != 0) {
    if (err != nullptr) *err = "writing pulled archive failed";
    return false;
  }
  return true;
}

ReplNodeStats ReplNode::stats() const {
  ReplNodeStats s;
  s.frames_sent = st_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = st_bytes_.load(std::memory_order_relaxed);
  s.frames_acked = st_acked_.load(std::memory_order_relaxed);
  s.retries = st_retries_.load(std::memory_order_relaxed);
  s.frames_given_up = st_given_up_.load(std::memory_order_relaxed);
  s.queue_stall_ns = st_stall_ns_.load(std::memory_order_relaxed);
  s.queue_hwm = st_qhwm_.load(std::memory_order_relaxed);
  s.frames_stored = st_stored_.load(std::memory_order_relaxed);
  s.cold_stored = st_cold_stored_.load(std::memory_order_relaxed);
  s.stale_frames = st_stale_.load(std::memory_order_relaxed);
  s.gap_rejects = st_gap_.load(std::memory_order_relaxed);
  s.invalid_msgs = st_invalid_.load(std::memory_order_relaxed);
  s.acks_sent = st_acks_sent_.load(std::memory_order_relaxed);
  s.pulls_served = st_pulls_.load(std::memory_order_relaxed);
  s.pull_frames_sent = st_pull_frames_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crpm::repl
