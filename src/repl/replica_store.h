// Replica-side persistence of partner frames.
//
// A ReplicaStore is a directory holding one snapshot-archive file per peer
// rank (`peer_<rank>.crpmsnap`) in the standard archive format — plain or
// codec-compressed frames alike (the frame header names the codec, so a
// replica never needs the origin's tier configuration): ArchiveReader
// reads it, snapshot::restore() restores from it, and `crpm_inspect repl
// status` audits it. Frames arrive over the transport already in archive
// frame encoding; append() validates them and appends + fdatasyncs, so a
// stored frame survives a replica crash exactly like a locally archived
// one (same torn-tail argument).
//
// Acceptance rules keep every stored chain restorable under a transport
// that reorders and duplicates:
//   * a frame with epoch <= newest stored is a duplicate/stale: not
//     stored, but reported kStale so the receiver re-acks (idempotence);
//   * a delta frame must extend the chain by exactly one epoch — a gap
//     means an earlier frame is still in flight, so it is rejected
//     (kGap, no ack) and the sender's retry fills the hole first;
//   * a base frame restarts the chain and may jump forward arbitrarily.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace crpm::repl {

enum class AppendVerdict {
  kStored,   // appended and durable — ack
  kStale,    // already have this epoch — ack (idempotent receive)
  kGap,      // would break the chain — no ack, sender must retry earlier
  kInvalid,  // frame bytes failed validation — no ack
  kError,    // local I/O failure — no ack
};

class ReplicaStore {
 public:
  // Creates `dir` if missing and adopts any peer files already in it
  // (newest intact epoch per peer is re-derived by scanning; torn tails
  // from a replica crash are truncated).
  explicit ReplicaStore(std::string dir);
  ~ReplicaStore();

  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  // Appends one archive-encoded frame of `origin`'s epoch `epoch`.
  // `block_size`/`region_size`/`segment_size` describe the origin
  // container's geometry (written into the per-peer archive header on
  // first contact and checked afterwards).
  AppendVerdict append(int origin, uint64_t epoch, uint64_t block_size,
                       uint64_t region_size, uint64_t segment_size,
                       const uint8_t* frame, size_t len, bool fsync);

  // Persists a shipped cold-tier base (the writer's cold observer feed)
  // under `peer_<origin>.crpmsnap.cold/` with the same tmp + fsync +
  // atomic-rename protocol the origin uses locally. The frame must be a
  // (possibly coded) base frame for `epoch`; `keep` bounds retained cold
  // bases (0 = keep all). Idempotent: re-storing an epoch atomically
  // replaces an identical file.
  bool store_cold(int origin, uint64_t epoch, uint64_t block_size,
                  uint64_t region_size, uint64_t segment_size,
                  const uint8_t* frame, size_t len, uint32_t keep);

  // Newest epoch stored for `origin` whose chain is intact (0 = none).
  uint64_t newest_epoch(int origin) const;

  // Ranks with a peer file in this store (on disk or appended this run).
  std::vector<int> peers() const;

  const std::string& dir() const { return dir_; }
  std::string peer_path(int origin) const { return peer_path(dir_, origin); }
  static std::string peer_path(const std::string& dir, int origin);

  uint64_t frames_stored() const;
  uint64_t bytes_stored() const;
  uint64_t cold_stored() const;

 private:
  struct PeerFile {
    int fd = -1;
    uint64_t newest = 0;
    uint64_t block_size = 0;
    uint64_t region_size = 0;
  };

  // Opens (scanning/truncating) or creates the peer file; mu_ held.
  PeerFile* open_peer(int origin, uint64_t block_size, uint64_t region_size,
                      uint64_t segment_size);

  std::string dir_;
  mutable std::mutex mu_;
  std::map<int, PeerFile> peers_;
  uint64_t frames_stored_ = 0;
  uint64_t bytes_stored_ = 0;
  uint64_t cold_stored_ = 0;
};

// Parses an archive-encoded frame's kind and epoch and verifies all of its
// CRCs — header, records and footer for plain frames; header, extent and
// encoded payload for coded ones (which stay encoded: their per-record
// CRCs are re-verified at decode). Used by the store before appending and
// by anything that needs to sanity-check frame bytes in flight.
bool parse_frame(const uint8_t* frame, size_t len, uint64_t block_size,
                 uint32_t* kind, uint64_t* epoch);

}  // namespace crpm::repl
