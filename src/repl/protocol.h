// Wire protocol of the peer checkpoint replication subsystem.
//
// Every message is one Channel datagram: a fixed ReplMsgHeader followed by
// an optional body. Frame-carrying messages (kFrame, kPullFrame) reuse the
// snapshot archive's on-disk frame encoding verbatim as the body — the
// same CRC framing protects the bytes in flight and at rest, and a replica
// can append a received frame to its store without re-serializing.
//
// Message types:
//   kFrame       sender → partner: one committed epoch's archive frame of
//                rank `origin`. Acked per frame; retransmitted until acked.
//   kAck         partner → sender: frame (origin, epoch) is durably stored
//                (or was already stored — acks are idempotent).
//   kQueryNewest recovery: "what is the newest epoch of rank `origin` you
//                can serve?" `flags` carries a request nonce.
//   kNewestResp  answer; `aux` = newest servable epoch (0 = none).
//   kPull        recovery: "send every frame of rank `origin` needed to
//                restore `epoch`". Idempotent: a retry resends all frames.
//   kPullFrame   one frame of a pull response; `aux` = frame index,
//                `aux2` = total frames (0 = cannot serve).
//   kColdBase    sender → partner: a cold-tier base frame of rank
//                `origin` (the state its local compaction folded away).
//                Stored under the replica's peer cold directory and acked
//                exactly like kFrame.
//
// The transport may drop, duplicate, delay and reorder arbitrarily
// (comm/channel.h). Every handler is therefore idempotent, every request
// carries a nonce its responses echo, and the header plus body are CRC32-
// protected so a future lossy byte-level transport slots in unchanged.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "snapshot/format.h"

namespace crpm::repl {

inline constexpr uint32_t kReplMagic = 0x6372706Cu;  // "crpl"

enum MsgType : uint32_t {
  kFrame = 1,
  kAck = 2,
  kQueryNewest = 3,
  kNewestResp = 4,
  kPull = 5,
  kPullFrame = 6,
  kColdBase = 7,
};

// Fixed-size, naturally aligned, zero-padded — CRC over the raw bytes is
// deterministic, mirroring the archive structs in snapshot/format.h.
struct ReplMsgHeader {
  uint32_t magic = kReplMagic;
  uint32_t type = 0;
  uint32_t origin = 0;  // rank whose container state this concerns
  uint32_t flags = 0;   // request nonce (query/pull and their responses)
  uint64_t epoch = 0;
  uint64_t block_size = 0;    // frame geometry (kFrame / kPullFrame)
  uint64_t region_size = 0;
  uint64_t segment_size = 0;
  uint64_t aux = 0;           // newest epoch / pull frame index
  uint64_t aux2 = 0;          // pull frame total
  uint32_t body_crc = 0;      // CRC32 of the body bytes
  uint32_t header_crc = 0;    // CRC32 of the preceding header bytes
};
static_assert(sizeof(ReplMsgHeader) == 72);

// Serializes header + body into one datagram, filling both CRCs.
inline std::vector<uint8_t> encode(ReplMsgHeader h, const uint8_t* body,
                                   size_t body_len) {
  h.body_crc = body_len == 0 ? 0 : snapshot::crc32(body, body_len);
  h.header_crc =
      snapshot::crc32(&h, offsetof(ReplMsgHeader, header_crc));
  std::vector<uint8_t> out(sizeof(h) + body_len);
  std::memcpy(out.data(), &h, sizeof(h));
  if (body_len != 0) std::memcpy(out.data() + sizeof(h), body, body_len);
  return out;
}

// Validates magic and both CRCs; on success points *body into `payload`.
// A corrupt datagram is simply ignored by receivers (the sender retries).
inline bool decode(const std::vector<uint8_t>& payload, ReplMsgHeader* h,
                   const uint8_t** body, size_t* body_len) {
  if (payload.size() < sizeof(ReplMsgHeader)) return false;
  std::memcpy(h, payload.data(), sizeof(ReplMsgHeader));
  if (h->magic != kReplMagic) return false;
  if (h->header_crc !=
      snapshot::crc32(h, offsetof(ReplMsgHeader, header_crc))) {
    return false;
  }
  const uint8_t* b = payload.data() + sizeof(ReplMsgHeader);
  size_t blen = payload.size() - sizeof(ReplMsgHeader);
  uint32_t crc = blen == 0 ? 0 : snapshot::crc32(b, blen);
  if (crc != h->body_crc) return false;
  *body = blen == 0 ? nullptr : b;
  *body_len = blen;
  return true;
}

// Partner map: rank r replicates its frames to the R ranks after it.
inline std::vector<int> partners_of(int rank, int nranks, int replicas) {
  std::vector<int> p;
  for (int i = 1; i <= replicas && i < nranks; ++i) {
    p.push_back((rank + i) % nranks);
  }
  return p;
}

}  // namespace crpm::repl
