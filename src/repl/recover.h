// Multi-level coordinated recovery (the replication subsystem's payoff).
//
// coordinated_open() (src/comm/coordinated.h) recovers a cluster whose
// ranks all still hold their containers: committed epochs differ by at
// most one and the stragglers roll back (level 1, the paper's protocol).
// coordinated_open_with_peers() adds level 2: a rank whose local state is
// *gone* — device wiped, archive lost — rebuilds its container from the
// replicas its partners stored, then rejoins the agreed epoch as if
// nothing had happened.
//
// Protocol (every rank calls this collectively; `node`'s service thread
// answers partner queries throughout, so healthy ranks can block in the
// collectives while serving):
//
//   1. vote: healthy ranks vote their committed epoch, lost ranks vote
//      UINT64_MAX. E_h = allreduce_min. All-lost => E_h = UINT64_MAX and
//      the cluster starts fresh.
//   2. lost ranks ask each partner for the newest epoch of their state it
//      can serve; reachable = max over partners of min(answer, E_h).
//      E = allreduce_min(healthy ? E_h : reachable).
//   3. CHECK (healthy): committed <= E + 1 — anything further ahead cannot
//      roll back to E (one epoch of retained history) and the cluster is
//      unrecoverable; same invariant as coordinated_open.
//   4. healthy ranks open at E (rolling back one epoch if ahead). Lost
//      ranks pull the frame chain for epoch E from a partner, restore it
//      onto their (pristine) device, renumber the restored container's
//      epoch counter to E (parity-preserving — see
//      Container::renumber_epoch) and reopen with the caller's options.
//   5. lost ranks refill their own replica store by pulling each client
//      rank's chain from that rank's local archive, so the next delta
//      frame (epoch E+1) extends a chain instead of gap-rejecting
//      forever.
//   6. barrier.
#pragma once

#include <cstdint>
#include <memory>

#include "comm/sim_comm.h"
#include "core/container.h"
#include "repl/replicator.h"

namespace crpm::repl {

struct PeerOpenResult {
  std::unique_ptr<Container> container;  // null only on (reported) failure
  uint64_t epoch = 0;      // the globally agreed recovered epoch
  uint64_t source = 0;     // CrpmStatsSnapshot::kRecovery{None,Local,Peer}
  std::string error;       // set when container is null
};

// Collective. `dev` is this rank's container device; a pristine/wiped
// device marks the rank as lost and triggers the peer pull. `node` must be
// constructed on the shared Channel before any rank enters (its service
// thread serves the others), with ReplConfig.local_archive pointing at
// this rank's archive file so it can serve refill pulls.
PeerOpenResult coordinated_open_with_peers(SimComm& comm, ReplNode& node,
                                           int rank, NvmDevice* dev,
                                           const CrpmOptions& opt);

// The ranks whose frames `rank` stores (inverse of partners_of): r-1..r-R.
std::vector<int> clients_of(int rank, int nranks, int replicas);

}  // namespace crpm::repl
