#include "repl/replica_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "snapshot/archive.h"
#include "snapshot/format.h"
#include "tier/coded.h"
#include "tier/cold.h"
#include "util/logging.h"

namespace crpm::repl {

using snapshot::ArchiveReader;
using snapshot::FrameFooter;
using snapshot::FrameHeader;

bool parse_frame(const uint8_t* frame, size_t len, uint64_t block_size,
                 uint32_t* kind, uint64_t* epoch) {
  if (len < sizeof(FrameHeader) + sizeof(FrameFooter)) return false;
  FrameHeader fh;
  std::memcpy(&fh, frame, sizeof(fh));
  if (fh.marker != snapshot::kFrameMarker) return false;
  if (fh.header_crc !=
      snapshot::crc32(&fh, offsetof(FrameHeader, header_crc))) {
    return false;
  }
  if (!snapshot::known_kind(fh.kind)) return false;
  if (snapshot::is_coded_kind(fh.kind)) {
    // Coded frames arrive in their on-disk (encoded) form; the extent's
    // dual CRC validates them without a decode, and the raw size must
    // match the advertised block count so the store's chain bookkeeping
    // can trust the header.
    snapshot::CodedExtent ce;
    if (!tier::coded_frame_valid(frame, len, &ce)) return false;
    if (ce.raw_bytes != snapshot::frame_bytes(fh.block_count, block_size)) {
      return false;
    }
    *kind = fh.kind;
    *epoch = fh.epoch;
    return true;
  }
  const uint64_t want = snapshot::frame_bytes(fh.block_count, block_size);
  if (want != len) return false;
  const uint64_t rec = snapshot::record_bytes(block_size);
  const uint8_t* p = frame + sizeof(FrameHeader);
  uint32_t payload_crc = 0;
  for (uint64_t i = 0; i < fh.block_count; ++i, p += rec) {
    uint32_t stored;
    std::memcpy(&stored, p + 8 + block_size, 4);
    if (stored != snapshot::crc32(p, 8 + block_size)) return false;
    payload_crc = snapshot::crc32(&stored, 4, payload_crc);
  }
  FrameFooter ff;
  std::memcpy(&ff, p, sizeof(ff));
  if (ff.marker != snapshot::kFooterMarker || ff.epoch != fh.epoch ||
      ff.frame_bytes != len || ff.payload_crc != payload_crc ||
      ff.footer_crc !=
          snapshot::crc32(&ff, offsetof(FrameFooter, footer_crc))) {
    return false;
  }
  *kind = fh.kind;
  *epoch = fh.epoch;
  return true;
}

ReplicaStore::ReplicaStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Adopt peer files left by a previous run so newest_epoch() answers
  // before any new frame arrives (recovery queries hit exactly this).
  for (const auto& e : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("peer_", 0) != 0) continue;
    const size_t dot = name.find(".crpmsnap");
    if (dot == std::string::npos) continue;
    char* end = nullptr;
    long r = std::strtol(name.c_str() + 5, &end, 10);
    if (end == nullptr || std::string(end) != ".crpmsnap") continue;
    std::lock_guard<std::mutex> lk(mu_);
    ArchiveReader reader(e.path().string());
    if (!reader.ok()) continue;
    open_peer(static_cast<int>(r), reader.scan().header.block_size,
              reader.scan().header.region_size,
              reader.scan().header.segment_size);
  }
}

ReplicaStore::~ReplicaStore() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [rank, pf] : peers_) {
    (void)rank;
    if (pf.fd >= 0) ::close(pf.fd);
  }
}

std::string ReplicaStore::peer_path(const std::string& dir, int origin) {
  return dir + "/peer_" + std::to_string(origin) + ".crpmsnap";
}

ReplicaStore::PeerFile* ReplicaStore::open_peer(int origin,
                                                uint64_t block_size,
                                                uint64_t region_size,
                                                uint64_t segment_size) {
  auto it = peers_.find(origin);
  if (it != peers_.end()) {
    PeerFile& pf = it->second;
    if (pf.block_size != block_size || pf.region_size != region_size) {
      CRPM_LOG_WARN("replica store %s: peer %d geometry mismatch",
                    dir_.c_str(), origin);
      return nullptr;
    }
    return &pf;
  }

  const std::string path = peer_path(origin);
  uint64_t newest = 0;
  uint64_t truncate_to = 0;
  bool reuse = false;
  {
    ArchiveReader reader(path);
    if (reader.ok()) {
      const auto& h = reader.scan().header;
      if (h.block_size != block_size || h.region_size != region_size) {
        CRPM_LOG_WARN("replica store %s: peer %d file has foreign geometry",
                      dir_.c_str(), origin);
        return nullptr;
      }
      reuse = true;
      truncate_to = reader.scan().scan_end;
      // Drop any corrupt tail epochs so `newest` only counts frames a
      // restore can actually use; the chain below them stays servable.
      const auto& epochs = reader.scan().epochs;
      size_t keep = epochs.size();
      while (keep > 0 && !reader.restorable(epochs[keep - 1].epoch)) --keep;
      if (keep < epochs.size()) truncate_to = epochs[keep].file_offset;
      if (keep > 0) newest = epochs[keep - 1].epoch;
    }
  }

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    CRPM_LOG_WARN("replica store %s: open(%s) failed: %s", dir_.c_str(),
                  path.c_str(), std::strerror(errno));
    return nullptr;
  }
  if (reuse) {
    if (::ftruncate(fd, static_cast<off_t>(truncate_to)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return nullptr;
    }
  } else {
    snapshot::ArchiveHeader h =
        snapshot::make_header(block_size, region_size, segment_size);
    if (::ftruncate(fd, 0) != 0 ||
        ::write(fd, &h, sizeof(h)) != ssize_t(sizeof(h))) {
      ::close(fd);
      return nullptr;
    }
  }

  PeerFile pf;
  pf.fd = fd;
  pf.newest = newest;
  pf.block_size = block_size;
  pf.region_size = region_size;
  return &peers_.emplace(origin, pf).first->second;
}

AppendVerdict ReplicaStore::append(int origin, uint64_t epoch,
                                   uint64_t block_size, uint64_t region_size,
                                   uint64_t segment_size,
                                   const uint8_t* frame, size_t len,
                                   bool fsync) {
  uint32_t kind = 0;
  uint64_t frame_epoch = 0;
  if (!parse_frame(frame, len, block_size, &kind, &frame_epoch) ||
      frame_epoch != epoch) {
    return AppendVerdict::kInvalid;
  }

  std::lock_guard<std::mutex> lk(mu_);
  PeerFile* pf = open_peer(origin, block_size, region_size, segment_size);
  if (pf == nullptr) return AppendVerdict::kError;
  if (epoch <= pf->newest) return AppendVerdict::kStale;
  if (snapshot::is_delta_kind(kind) && epoch != pf->newest + 1) {
    // An earlier delta is still in flight; storing this one would leave an
    // unrestorable gap the archive format cannot express.
    return AppendVerdict::kGap;
  }

  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(pf->fd, frame + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      CRPM_LOG_WARN("replica store %s: write for peer %d failed: %s",
                    dir_.c_str(), origin, std::strerror(errno));
      return AppendVerdict::kError;
    }
    done += static_cast<size_t>(n);
  }
  if (fsync) ::fdatasync(pf->fd);
  pf->newest = epoch;
  ++frames_stored_;
  bytes_stored_ += len;
  return AppendVerdict::kStored;
}

bool ReplicaStore::store_cold(int origin, uint64_t epoch,
                              uint64_t block_size, uint64_t region_size,
                              uint64_t segment_size, const uint8_t* frame,
                              size_t len, uint32_t keep) {
  uint32_t kind = 0;
  uint64_t frame_epoch = 0;
  if (!parse_frame(frame, len, block_size, &kind, &frame_epoch) ||
      frame_epoch != epoch || !snapshot::is_base_kind(kind)) {
    return false;
  }
  snapshot::ArchiveHeader h =
      snapshot::make_header(block_size, region_size, segment_size);
  tier::ColdTier cold(tier::ColdTier::dir_for(peer_path(origin)));
  std::string err;
  bool ok = cold.store(
      epoch, &h, sizeof(h), frame, len,
      [](int fd, const void* buf, size_t n) {
        const auto* p = static_cast<const uint8_t*>(buf);
        size_t done = 0;
        while (done < n) {
          ssize_t w = ::write(fd, p + done, n - done);
          if (w < 0) {
            if (errno == EINTR) continue;
            return false;
          }
          done += static_cast<size_t>(w);
        }
        return true;
      },
      keep, &err);
  if (!ok) {
    CRPM_LOG_WARN("replica store %s: cold store for peer %d epoch %llu "
                  "failed: %s",
                  dir_.c_str(), origin, (unsigned long long)epoch,
                  err.c_str());
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++cold_stored_;
  bytes_stored_ += len;
  return true;
}

uint64_t ReplicaStore::cold_stored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cold_stored_;
}

uint64_t ReplicaStore::newest_epoch(int origin) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(origin);
  return it == peers_.end() ? 0 : it->second.newest;
}

std::vector<int> ReplicaStore::peers() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<int> out;
  out.reserve(peers_.size());
  for (const auto& [rank, pf] : peers_) {
    (void)pf;
    out.push_back(rank);
  }
  return out;
}

uint64_t ReplicaStore::frames_stored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return frames_stored_;
}

uint64_t ReplicaStore::bytes_stored() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_stored_;
}

}  // namespace crpm::repl
