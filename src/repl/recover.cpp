#include "repl/recover.h"

#include <cstdio>

#include "core/crpm_stats.h"
#include "snapshot/restore.h"
#include "util/logging.h"

namespace crpm::repl {

std::vector<int> clients_of(int rank, int nranks, int replicas) {
  std::vector<int> c;
  for (int i = 1; i <= replicas && i < nranks; ++i) {
    c.push_back((rank - i + nranks) % nranks);
  }
  return c;
}

namespace {

// Rebuilds the lost rank's container on `dev` at the agreed epoch `e` by
// pulling the frame chain from `partner`.
std::unique_ptr<Container> restore_from_partner(ReplNode& node, int partner,
                                                int rank, uint64_t e,
                                                NvmDevice* dev,
                                                const CrpmOptions& opt,
                                                std::string* err) {
  const std::string pulled =
      node.store().dir() + "/recover_self.crpmsnap";
  if (!node.pull(partner, rank, e, pulled, err)) return nullptr;

  snapshot::RestoreResult r = snapshot::restore(pulled, e, dev, opt);
  std::remove(pulled.c_str());
  if (r.container == nullptr) {
    *err = "restore from pulled archive failed: " + r.error;
    return nullptr;
  }
  CRPM_CHECK(r.epoch == e, "pulled archive restored epoch %llu, wanted %llu",
             (unsigned long long)r.epoch, (unsigned long long)e);

  // The restored container committed its state as epoch 1; the cluster is
  // at e. Renumbering preserves parity (active_index() = epoch & 1), so if
  // e is on the other parity first commit one state-identical checkpoint —
  // touching a root with its own value defeats the empty-checkpoint skip.
  uint64_t cur = r.container->committed_epoch();
  if (((e ^ cur) & 1) != 0) {
    r.container->set_root(0, r.container->get_root(0));
    r.container->checkpoint();
    cur = r.container->committed_epoch();
  }
  r.container->renumber_epoch(e);
  // Reopen with the caller's options (restore forced thread_count = 1).
  r.container.reset();
  return Container::open(dev, opt, Container::kLatestEpoch);
}

}  // namespace

PeerOpenResult coordinated_open_with_peers(SimComm& comm, ReplNode& node,
                                           int rank, NvmDevice* dev,
                                           const CrpmOptions& opt) {
  PeerOpenResult result;
  const uint64_t mine = Container::peek_committed_epoch(dev);
  const bool lost = mine == Container::kLatestEpoch;

  // Round 1: the healthy ranks' minimum. All-lost leaves e_h at
  // UINT64_MAX, which the votes below turn into a fresh start at 0.
  const uint64_t e_h =
      comm.allreduce_min(rank, lost ? Container::kLatestEpoch : mine);

  // Round 2: lost ranks find what their partners can actually serve. The
  // partners' service threads answer while their app threads already block
  // in the allreduce.
  uint64_t reachable = 0;
  int best_partner = -1;
  if (lost && e_h != Container::kLatestEpoch) {
    for (int p : node.partners()) {
      uint64_t newest = 0;
      if (!node.query_newest(p, rank, &newest)) continue;
      const uint64_t candidate = newest < e_h ? newest : e_h;
      if (best_partner < 0 || candidate > reachable) {
        reachable = candidate;
        best_partner = p;
      }
    }
  }
  uint64_t e = comm.allreduce_min(rank, lost ? reachable : e_h);
  if (e == Container::kLatestEpoch) e = 0;  // every rank lost: fresh start

  if (!lost) {
    CRPM_CHECK(mine <= e + 1,
               "rank %d committed epoch %llu but the cluster agreed on "
               "%llu — more than one epoch ahead, cannot roll back",
               rank, (unsigned long long)mine, (unsigned long long)e);
    result.container = Container::open(
        dev, opt, mine == e ? Container::kLatestEpoch : e);
    result.source = CrpmStatsSnapshot::kRecoveryLocal;
  } else if (e == 0) {
    // Nothing to recover (fresh cluster, or no partner holds anything and
    // the healthy ranks agreed to restart from scratch).
    result.container = Container::open(dev, opt, Container::kLatestEpoch);
    result.source = CrpmStatsSnapshot::kRecoveryNone;
  } else {
    std::string err;
    if (best_partner >= 0 && reachable >= e) {
      result.container = restore_from_partner(node, best_partner, rank, e,
                                              dev, opt, &err);
    } else {
      err = "no partner can serve the agreed epoch";
    }
    if (result.container != nullptr) {
      result.source = CrpmStatsSnapshot::kRecoveryPeer;
      // Refill this rank's replica store: pull each client's chain from
      // the client itself, so the next delta frame (epoch e+1) extends a
      // chain instead of gap-rejecting forever.
      for (int o : clients_of(rank, comm.nranks(),
                              node.config().replicas)) {
        std::string rerr;
        if (!node.pull(o, o, e, node.store().peer_path(o), &rerr)) {
          CRPM_LOG_WARN(
              "rank %d: refilling replica store for rank %d failed (%s); "
              "its future frames will be rejected until its next base",
              rank, o, rerr.c_str());
        }
      }
    } else {
      result.error = err;
      CRPM_LOG_WARN("rank %d: peer recovery failed: %s", rank, err.c_str());
    }
  }

  result.epoch = e;
  if (result.container != nullptr) {
    result.container->stats().note_recovery_source(result.source);
  }
  comm.barrier();
  return result;
}

}  // namespace crpm::repl
