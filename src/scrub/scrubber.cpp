#include "scrub/scrubber.h"

#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "core/layout.h"
#include "snapshot/archive.h"
#include "snapshot/restore.h"
#include "tier/cold.h"
#include "util/logging.h"

namespace crpm::scrub {

namespace {

uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

void step(const char* name) { crpm::snapshot::detail::restore_step(name); }

// The container scrub reads metadata a live writer may be updating
// concurrently through its own mapping of the same file. Plain loads of
// that memory are a formal data race; route every word through a relaxed
// atomic load so the audit reads each word atomically (and TSAN-clean).
template <typename T>
T ld(const T& word) {
  return __atomic_load_n(&word, __ATOMIC_RELAXED);
}

}  // namespace

Scrubber::Scrubber(ScrubOptions opt) : opt_(std::move(opt)) {}

Scrubber::~Scrubber() { stop(); }

void Scrubber::scrub_archive(const std::string& path, ScrubReport* report) {
  snapshot::ArchiveReader reader(path);
  if (!reader.ok()) {
    report->findings.push_back(
        {path, "not a valid snapshot archive (header corrupt or torn)"});
    return;
  }
  for (const auto& info : reader.scan().epochs) {
    ++report->frames_checked;
    report->bytes_checked += info.frame_bytes;
    if (!info.intact) {
      report->findings.push_back(
          {path, "epoch " + std::to_string(info.epoch) + " at offset " +
                     std::to_string(info.file_offset) +
                     " failed CRC re-verification"});
    }
  }
  // A truncated tail is the normal shape of an append in flight (or of the
  // crash the archive exists to survive) — restore already falls back past
  // it, so it is not damage.
}

void Scrubber::scrub_container(ScrubReport* report) {
  const std::string& path = opt_.container_path;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return;
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size < sizeof(MetaHeader)) {
    report->findings.push_back({path, "file too small to hold a container"});
    ::close(fd);
    return;
  }
  // MAP_SHARED: a live container's updates are visible, which is exactly
  // what the epoch-stability recheck below is for.
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) return;
  const auto* h = static_cast<const MetaHeader*>(mem);
  const auto* base = static_cast<const uint8_t*>(mem);

  bool structural_ok = true;
  auto fail = [&](const std::string& detail) {
    report->findings.push_back({path, detail});
    structural_ok = false;
  };
  // Geometry words are write-once at format time, but a live writer shares
  // this mapping, so even these go through ld().
  const uint64_t magic = ld(h->magic);
  const uint32_t version = ld(h->version);
  const uint8_t initialized = ld(h->initialized);
  const uint32_t meta_replicas = ld(h->meta_replicas);
  const uint64_t segment_size = ld(h->segment_size);
  const uint64_t nr_main_segs = ld(h->nr_main_segs);
  const uint64_t nr_backup_segs = ld(h->nr_backup_segs);
  const uint64_t backup_region_offset = ld(h->backup_region_offset);
  const uint64_t seg_state_offset = ld(h->seg_state_offset);
  const uint64_t backup_to_main_offset = ld(h->backup_to_main_offset);
  const uint64_t roots_offset = ld(h->roots_offset);
  if (magic != kMetaMagic) fail("bad magic: not a crpm container");
  if (structural_ok && version != kMetaVersion) {
    fail("unsupported metadata version " + std::to_string(version));
  }
  if (structural_ok && initialized == 0) {
    fail("container is not initialized (torn format)");
  }
  if (structural_ok &&
      (meta_replicas == 0 || meta_replicas > kMaxInflightEpochs + 1)) {
    fail("implausible meta_replicas " + std::to_string(meta_replicas));
  }
  if (structural_ok) {
    const uint64_t need =
        backup_region_offset + nr_backup_segs * segment_size;
    if (size < need) {
      fail("file truncated: geometry needs " + std::to_string(need) +
           " bytes");
    }
  }
  if (!structural_ok) {
    ::munmap(mem, size);
    return;
  }

  // One audit of the active metadata replica for epoch e0.
  auto audit = [&](uint64_t e0) {
    const uint64_t active = e0 % meta_replicas;
    std::vector<ScrubFinding> pending;

    const uint8_t* states = base + seg_state_offset + active * nr_main_segs;
    const auto* b2m =
        reinterpret_cast<const uint32_t*>(base + backup_to_main_offset);
    const auto* roots =
        reinterpret_cast<const uint64_t*>(base + roots_offset) +
        active * kNumRoots;

    for (uint64_t s = 0; s < nr_main_segs; ++s) {
      const uint8_t st = ld(states[s]);
      if (st > kSegBackup) {
        pending.push_back({path, "seg_state[" + std::to_string(active) +
                                     "][" + std::to_string(s) + "] = " +
                                     std::to_string(st) + " (invalid)"});
      }
    }
    std::vector<uint32_t> pair_of_main(nr_main_segs, kNoPair);
    for (uint64_t b = 0; b < nr_backup_segs; ++b) {
      const uint32_t m = ld(b2m[b]);
      if (m == kNoPair) continue;
      if (m >= nr_main_segs) {
        pending.push_back({path, "backup " + std::to_string(b) +
                                     " paired to out-of-range main " +
                                     std::to_string(m)});
        continue;
      }
      if (pair_of_main[m] != kNoPair) {
        pending.push_back({path, "main segment " + std::to_string(m) +
                                     " paired to two backups"});
      }
      pair_of_main[m] = static_cast<uint32_t>(b);
    }
    for (uint64_t s = 0; s < nr_main_segs; ++s) {
      if (ld(states[s]) == kSegBackup && pair_of_main[s] == kNoPair) {
        pending.push_back({path, "segment " + std::to_string(s) +
                                     " is SS_Backup but has no pairing"});
      }
    }
    const uint64_t region = nr_main_segs * segment_size;
    for (uint32_t r = 0; r < kNumRoots; ++r) {
      const uint64_t root = ld(roots[r]);
      if (root != 0 && root >= region) {
        pending.push_back({path, "root[" + std::to_string(r) +
                                     "] offset out of range"});
      }
    }
    return pending;
  };
  auto same = [](const std::vector<ScrubFinding>& a,
                 const std::vector<ScrubFinding>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].detail != b[i].detail) return false;
    }
    return true;
  };

  // The live epoch can move between reads, and even a still epoch does not
  // mean the words behind it held still (a commit may be mid-flight inside
  // the same epoch). Quarantining a healthy live container is the one
  // mistake the scrubber must not make, so a finding is kept only when TWO
  // consecutive audits under an unmoved epoch agree exactly; anything less
  // is counted as skipped and retried next pass.
  bool stable = false;
  for (int attempt = 0; attempt < 3 && !stable; ++attempt) {
    const uint64_t e0 = ld(h->committed_epoch);
    std::vector<ScrubFinding> first = audit(e0);
    if (ld(h->committed_epoch) != e0) continue;
    std::vector<ScrubFinding> second = audit(e0);
    if (ld(h->committed_epoch) != e0) continue;
    if (!same(first, second)) continue;
    stable = true;
    for (auto& f : first) report->findings.push_back(std::move(f));
    report->bytes_checked += nr_main_segs + nr_backup_segs * 4 +
                             kNumRoots * 8 + sizeof(MetaHeader);
  }
  if (!stable) ++report->skipped;
  ::munmap(mem, size);
}

void Scrubber::write_quarantine(const ScrubReport& report) {
  step("scrub.quarantine");
  std::map<std::string, std::vector<const ScrubFinding*>> by_object;
  for (const auto& f : report.findings) by_object[f.object].push_back(&f);
  for (const auto& [object, findings] : by_object) {
    const std::string marker = object + ".quarantine";
    std::FILE* f = std::fopen(marker.c_str(), "w");
    if (f == nullptr) continue;
    for (const auto* finding : findings) {
      std::fprintf(f, "%s\n", finding->detail.c_str());
    }
    std::fclose(f);
    CRPM_LOG_WARN("scrub: quarantined %s (%zu findings)", object.c_str(),
                  findings.size());
  }
}

ScrubReport Scrubber::run_pass() {
  ScrubReport report;
  const uint64_t t0 = thread_cpu_ns();
  if (!opt_.archive_path.empty() &&
      ::access(opt_.archive_path.c_str(), F_OK) == 0) {
    scrub_archive(opt_.archive_path, &report);
    step("scrub.archive");
    for (const auto& entry :
         tier::ColdTier::list_for_archive(opt_.archive_path)) {
      scrub_archive(entry.path, &report);
    }
    step("scrub.cold");
  }
  if (!opt_.container_path.empty() &&
      ::access(opt_.container_path.c_str(), F_OK) == 0) {
    scrub_container(&report);
    step("scrub.container");
  }
  if (opt_.quarantine && report.damaged()) write_quarantine(report);
  passes_.fetch_add(1, std::memory_order_relaxed);
  if (opt_.stats != nullptr) {
    opt_.stats->add_scrub_pass(report.frames_checked, report.bytes_checked,
                               report.findings.size(), report.skipped,
                               thread_cpu_ns() - t0);
  }
  step("scrub.pass");
  return report;
}

void Scrubber::worker() {
  // Scrubbing is strictly background work: same SCHED_IDLE discipline as
  // the archive writer, so a pass can never preempt a commit.
  sched_param sp{};
  if (::pthread_setschedparam(::pthread_self(), SCHED_IDLE, &sp) != 0) {
    ::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)),
                  10);
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(opt_.interval_ms),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    run_pass();
  }
}

void Scrubber::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { worker(); });
}

void Scrubber::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

ScrubReport scrub_directory(const std::string& dir, bool quarantine) {
  ScrubReport total;
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> containers, archives, markers;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    if (p.size() > 4 && p.compare(p.size() - 4, 4, ".ctr") == 0) {
      containers.push_back(p);
    } else if (p.size() > 5 && p.compare(p.size() - 5, 5, ".snap") == 0) {
      archives.push_back(p);
    } else if (p.size() > 11 &&
               p.compare(p.size() - 11, 11, ".quarantine") == 0) {
      markers.push_back(p);
    }
  }
  std::sort(containers.begin(), containers.end());
  std::sort(archives.begin(), archives.end());
  std::sort(markers.begin(), markers.end());
  auto accumulate = [&](ScrubOptions opt) {
    opt.quarantine = quarantine;
    Scrubber s(std::move(opt));
    ScrubReport r = s.run_pass();
    total.frames_checked += r.frames_checked;
    total.bytes_checked += r.bytes_checked;
    total.skipped += r.skipped;
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  };
  for (const auto& c : containers) {
    ScrubOptions opt;
    opt.container_path = c;
    accumulate(std::move(opt));
  }
  for (const auto& a : archives) {
    ScrubOptions opt;
    opt.archive_path = a;  // cold tier rides along
    accumulate(std::move(opt));
  }
  // A pre-existing marker means an earlier pass saw damage; keep it
  // visible even if the damaged frames have since been compacted away.
  for (const auto& m : markers) {
    total.findings.push_back({m, "pre-existing quarantine marker"});
  }
  return total;
}

}  // namespace crpm::scrub
