// Online scrubber: background verification of everything recovery would
// later trust — archive frame CRCs, cold-tier bases, and the container's
// persistent metadata invariants (segment states, backup pairings, roots).
//
// The point (after Huang et al.'s HPC-persistence argument) is to find bit
// rot while the replica that could mask it still exists, instead of at
// restore time when it is the last copy. A pass is read-only except for
// quarantine markers: damage to object X is recorded in `X.quarantine` so
// operators and `crpm_inspect scrub` see it even after a restart.
//
// Online discipline:
//   * The background thread runs SCHED_IDLE (the archive writer's
//     convention) so scrubbing only ever rides spare cycles.
//   * A torn tail on a live archive is the normal shape of an append in
//     flight, not damage; only a frame whose header committed but whose
//     body fails CRC is reported.
//   * Container metadata is checked against the active replica
//     (committed_epoch % meta_replicas) with an epoch-stability recheck:
//     if a commit lands mid-read the pass discards its container findings
//     and counts a skip, retrying next interval.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/crpm_stats.h"

namespace crpm::scrub {

struct ScrubFinding {
  std::string object;  // file the damage lives in
  std::string detail;
};

struct ScrubReport {
  uint64_t frames_checked = 0;
  uint64_t bytes_checked = 0;
  uint64_t skipped = 0;  // checks abandoned: epoch moved mid-read
  std::vector<ScrubFinding> findings;
  bool damaged() const { return !findings.empty(); }
};

struct ScrubOptions {
  // Hot archive (and its cold tier) to re-verify; empty skips.
  std::string archive_path;
  // Container file whose persistent metadata to audit; empty skips. Safe
  // on a live container: the mapping is read-only and epoch-racy reads
  // are retried, never reported.
  std::string container_path;
  // Scrub counters are published here after every pass (may be null).
  crpm::CrpmStats* stats = nullptr;
  // Background pass cadence for start().
  uint64_t interval_ms = 1000;
  // Write `<object>.quarantine` describing damage when found.
  bool quarantine = true;
};

class Scrubber {
 public:
  explicit Scrubber(ScrubOptions opt);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // One synchronous verification pass (also what the background thread
  // runs). Publishes stats and writes quarantine markers per options.
  ScrubReport run_pass();

  // Background SCHED_IDLE scrub thread, one pass per interval_ms.
  void start();
  void stop();

  uint64_t passes() const {
    return passes_.load(std::memory_order_relaxed);
  }

 private:
  void worker();
  void scrub_archive(const std::string& path, ScrubReport* report);
  void scrub_container(ScrubReport* report);
  void write_quarantine(const ScrubReport& report);

  ScrubOptions opt_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<uint64_t> passes_{0};
};

// Offline sweep for `crpm_inspect scrub <dir>`: scrubs every container
// (*.ctr) and archive (*.snap, including cold tiers) under `dir`, writing
// quarantine markers for damage. Also surfaces pre-existing `*.quarantine`
// markers as findings, so damage stays visible across re-runs.
ScrubReport scrub_directory(const std::string& dir, bool quarantine);

}  // namespace crpm::scrub
