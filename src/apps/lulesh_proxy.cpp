// LULESH stand-in: explicit shock-hydrodynamics-shaped proxy.
//
// Mirrors LULESH 2.0's data and control shape — a size^3 element domain
// per rank with (size+1)^3 nodes, nodal position/velocity arrays and
// element energy/pressure/artificial-viscosity arrays, a Lagrange-leapfrog
// step that rewrites every array, and a globally reduced time-step — which
// is what determines its checkpoint behaviour: ~10 large dense arrays all
// dirty every iteration, checkpointed every five iterations (Section
// 5.2.2). The physics is a simplified energy-diffusion + node-kick scheme,
// deterministic and conserving a checksum for restart verification.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/miniapp.h"
#include "util/stopwatch.h"

namespace crpm {

namespace {

struct Domain {
  int n;  // elements per edge
  int64_t nelem() const { return int64_t(n) * n * n; }
  int64_t nnode() const { return int64_t(n + 1) * (n + 1) * (n + 1); }
  int64_t eidx(int x, int y, int z) const {
    return (int64_t(z) * n + y) * n + x;
  }
  int64_t nidx(int x, int y, int z) const {
    return (int64_t(z) * (n + 1) + y) * (n + 1) + x;
  }
};

}  // namespace

MiniAppResult run_lulesh_proxy(const MiniAppConfig& cfg) {
  Domain d{cfg.size};
  const int64_t ne = d.nelem();
  const int64_t nn = d.nnode();
  SimComm* comm = cfg.store.comm;
  int rank = cfg.store.rank;

  StateStore::Config store_cfg = cfg.store;
  if (store_cfg.capacity_bytes == 0) {
    store_cfg.capacity_bytes =
        (uint64_t(5 * ne) + uint64_t(7 * nn)) * 8 * 3 / 2 + (2 << 20);
  }
  StateStore store(store_cfg);
  // Element-centred state.
  auto* e = store.array<double>(0, uint64_t(ne));   // energy
  auto* pr = store.array<double>(1, uint64_t(ne));  // pressure
  auto* q = store.array<double>(2, uint64_t(ne));   // artificial viscosity
  auto* v = store.array<double>(3, uint64_t(ne));   // relative volume
  // Node-centred state.
  auto* xd = store.array<double>(4, uint64_t(nn));  // velocity components
  auto* yd = store.array<double>(5, uint64_t(nn));
  auto* zd = store.array<double>(6, uint64_t(nn));
  auto* xp = store.array<double>(7, uint64_t(nn));  // displacements
  auto* yp = store.array<double>(8, uint64_t(nn));
  auto* zp = store.array<double>(9, uint64_t(nn));
  auto* scalars = store.array<double>(10, 4);  // [t, dt]
  // Immutable after initialization (like LULESH's nodal masses and mesh):
  // part of the checkpoint state but never dirty after epoch 1, so the
  // differential checkpoints skip them while FTI re-serializes them.
  auto* elem_mass = store.array<double>(11, uint64_t(ne));
  auto* nodal_mass = store.array<double>(12, uint64_t(nn));

  MiniAppResult res;
  res.resumed = store.recovered();
  uint64_t start_iter = store.iteration();
  res.start_iteration = start_iter;
  res.recovery_s = store.last_recovery_seconds();
  if (store.container() != nullptr) {
    res.recovery_sync_s =
        double(store.container()->recovery_sync_ns()) * 1e-9;
  }

  if (!res.resumed) {
    // Sedov-like initialization: a point of energy at the rank's corner.
    store.mark_dirty(e, uint64_t(ne) * 8);
    store.mark_dirty(v, uint64_t(ne) * 8);
    store.mark_dirty(scalars, 4 * 8);
    store.mark_dirty(elem_mass, uint64_t(ne) * 8);
    store.mark_dirty(nodal_mass, uint64_t(nn) * 8);
    std::fill_n(v, ne, 1.0);
    std::fill_n(elem_mass, ne, 1.0);
    std::fill_n(nodal_mass, nn, 0.125);
    e[d.eidx(0, 0, 0)] = 3.948746e+7 / double(1 + rank);
    scalars[0] = 0.0;      // t
    scalars[1] = 1.0e-7;   // dt
  }

  const int64_t eplane = int64_t(d.n) * d.n;
  std::vector<double> enew(static_cast<size_t>(ne));

  Stopwatch sw;
  for (uint64_t it = start_iter; it < uint64_t(cfg.iterations); ++it) {
    double dt = scalars[1];

    // 1. Element update: energy diffusion + EOS (pressure from energy).
    store.mark_dirty(e, uint64_t(ne) * 8);
    store.mark_dirty(pr, uint64_t(ne) * 8);
    store.mark_dirty(q, uint64_t(ne) * 8);
    store.mark_dirty(v, uint64_t(ne) * 8);
    double max_e = 0;
    for (int z = 0; z < d.n; ++z) {
      for (int y = 0; y < d.n; ++y) {
        for (int x = 0; x < d.n; ++x) {
          int64_t i = d.eidx(x, y, z);
          double lap = -6.0 * e[i];
          lap += e[x > 0 ? i - 1 : i] + e[x < d.n - 1 ? i + 1 : i];
          lap += e[y > 0 ? i - d.n : i] + e[y < d.n - 1 ? i + d.n : i];
          lap += e[z > 0 ? i - eplane : i] + e[z < d.n - 1 ? i + eplane : i];
          enew[size_t(i)] = e[i] + 0.1 * lap + dt * q[i];
          max_e = std::max(max_e, std::abs(enew[size_t(i)]));
        }
      }
    }
    for (int64_t i = 0; i < ne; ++i) {
      e[i] = enew[size_t(i)];
      pr[i] = (2.0 / 3.0) * e[i] * v[i];
      q[i] = 0.25 * std::abs(pr[i]) * dt;
      v[i] = std::clamp(v[i] + 1e-9 * pr[i] * dt, 0.1, 10.0);
    }

    // 2. Nodal kick: velocities from pressure gradients of the eight
    // surrounding elements (simplified to the element below the node),
    // positions from velocities.
    store.mark_dirty(xd, uint64_t(nn) * 8);
    store.mark_dirty(yd, uint64_t(nn) * 8);
    store.mark_dirty(zd, uint64_t(nn) * 8);
    store.mark_dirty(xp, uint64_t(nn) * 8);
    store.mark_dirty(yp, uint64_t(nn) * 8);
    store.mark_dirty(zp, uint64_t(nn) * 8);
    for (int z = 0; z < d.n; ++z) {
      for (int y = 0; y < d.n; ++y) {
        for (int x = 0; x < d.n; ++x) {
          int64_t eid = d.eidx(x, y, z);
          int64_t nid = d.nidx(x, y, z);
          double f = pr[eid] * 1e-10 / nodal_mass[nid] * 0.125;
          xd[nid] += f * dt;
          yd[nid] += 0.5 * f * dt;
          zd[nid] += 0.25 * f * dt;
          xp[nid] += xd[nid] * dt;
          yp[nid] += yd[nid] * dt;
          zp[nid] += zd[nid] * dt;
        }
      }
    }

    // 3. Courant-like global time-step control (the LULESH allreduce).
    double local_dt = 1.0e-7 / (1.0 + 1e-9 * max_e);
    double new_dt = local_dt;
    if (comm != nullptr) {
      // min-reduce via the u64 helper: monotone transform on positives.
      uint64_t bits;
      std::memcpy(&bits, &local_dt, 8);
      uint64_t min_bits = comm->allreduce_min(rank, bits);
      std::memcpy(&new_dt, &min_bits, 8);
    }
    store.mark_dirty(scalars, 4 * 8);
    scalars[0] += dt;
    scalars[1] = std::min(new_dt, dt * 1.1);

    ++res.iterations_done;
    if (cfg.ckpt_every > 0 && (it + 1) % uint64_t(cfg.ckpt_every) == 0) {
      store.set_iteration(it + 1);
      store.checkpoint();
    }
  }
  res.elapsed_s = sw.elapsed_sec();
  res.checkpoint_s = store.checkpoint_seconds();

  double sum = 0;
  for (int64_t i = 0; i < ne; ++i) sum += e[i] * (1 + (i % 7));
  res.checksum = sum;
  res.state_bytes = store.state_bytes();
  res.checkpoint_bytes = store.checkpoint_bytes();
  res.storage_bytes = store.storage_bytes();
  res.dram_bytes = store.dram_bytes();
  return res;
}

}  // namespace crpm
