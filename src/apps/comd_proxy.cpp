// CoMD stand-in: Lennard-Jones molecular dynamics with link cells.
//
// Atoms start on an fcc lattice (4 atoms per unit cell, CoMD's default),
// forces come from a truncated LJ 6-12 potential evaluated over neighbour
// link cells, and integration is velocity Verlet. The checkpointed state
// is positions + velocities (forces are recomputed), giving the smaller,
// update-everything-per-step state profile CoMD shows in Figure 8.
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/miniapp.h"
#include "util/stopwatch.h"

namespace crpm {

namespace {

constexpr double kCutoff = 2.5;     // LJ units
constexpr double kCell = 2.5;       // link-cell edge = cutoff
constexpr double kDt = 0.002;
constexpr double kLatticeA = 1.587401;  // fcc lattice constant (rho~1.0)

}  // namespace

MiniAppResult run_comd_proxy(const MiniAppConfig& cfg) {
  const int nu = cfg.size / 2 + 2;  // unit cells per edge
  const int64_t natoms = int64_t(4) * nu * nu * nu;
  const double box = nu * kLatticeA;
  SimComm* comm = cfg.store.comm;
  int rank = cfg.store.rank;

  StateStore::Config store_cfg = cfg.store;
  if (store_cfg.capacity_bytes == 0) {
    store_cfg.capacity_bytes = uint64_t(6 * natoms) * 8 * 3 / 2 + (2 << 20);
  }
  StateStore store(store_cfg);
  auto* pos = store.array<double>(0, uint64_t(3 * natoms));
  auto* vel = store.array<double>(1, uint64_t(3 * natoms));

  MiniAppResult res;
  res.resumed = store.recovered();
  uint64_t start_iter = store.iteration();
  res.start_iteration = start_iter;
  res.recovery_s = store.last_recovery_seconds();
  if (store.container() != nullptr) {
    res.recovery_sync_s =
        double(store.container()->recovery_sync_ns()) * 1e-9;
  }

  if (!res.resumed) {
    store.mark_dirty(pos, uint64_t(3 * natoms) * 8);
    store.mark_dirty(vel, uint64_t(3 * natoms) * 8);
    static const double basis[4][3] = {
        {0.25, 0.25, 0.25}, {0.75, 0.75, 0.25},
        {0.75, 0.25, 0.75}, {0.25, 0.75, 0.75}};
    int64_t a = 0;
    for (int z = 0; z < nu; ++z) {
      for (int y = 0; y < nu; ++y) {
        for (int x = 0; x < nu; ++x) {
          for (int b = 0; b < 4; ++b, ++a) {
            pos[3 * a + 0] = (x + basis[b][0]) * kLatticeA;
            pos[3 * a + 1] = (y + basis[b][1]) * kLatticeA;
            pos[3 * a + 2] = (z + basis[b][2]) * kLatticeA;
            // Small deterministic velocity perturbation (rank-dependent).
            vel[3 * a + 0] = 0.1 * std::sin(double(a + rank));
            vel[3 * a + 1] = 0.1 * std::cos(double(2 * a + rank));
            vel[3 * a + 2] = 0.1 * std::sin(double(3 * a + rank) * 0.5);
          }
        }
      }
    }
  }

  const int ncell = std::max(3, int(box / kCell));
  const double cell_w = box / ncell;
  std::vector<double> force(size_t(3 * natoms));
  std::vector<int> cell_head(size_t(ncell) * ncell * ncell);
  std::vector<int> cell_next(static_cast<size_t>(natoms));
  auto cell_of = [&](double x, double y, double z) {
    auto clampc = [&](double c) {
      int i = int(c / cell_w);
      return i < 0 ? 0 : (i >= ncell ? ncell - 1 : i);
    };
    return (int64_t(clampc(z)) * ncell + clampc(y)) * ncell + clampc(x);
  };

  double potential = 0;
  auto compute_forces = [&] {
    std::fill(cell_head.begin(), cell_head.end(), -1);
    for (int64_t a = 0; a < natoms; ++a) {
      int64_t c = cell_of(pos[3 * a], pos[3 * a + 1], pos[3 * a + 2]);
      cell_next[size_t(a)] = cell_head[size_t(c)];
      cell_head[size_t(c)] = int(a);
    }
    std::fill(force.begin(), force.end(), 0.0);
    potential = 0;
    const double rc2 = kCutoff * kCutoff;
    for (int cz = 0; cz < ncell; ++cz) {
      for (int cy = 0; cy < ncell; ++cy) {
        for (int cx = 0; cx < ncell; ++cx) {
          int64_t c = (int64_t(cz) * ncell + cy) * ncell + cx;
          for (int i = cell_head[size_t(c)]; i >= 0;
               i = cell_next[size_t(i)]) {
            for (int dz = -1; dz <= 1; ++dz) {
              int zz = cz + dz;
              if (zz < 0 || zz >= ncell) continue;
              for (int dy = -1; dy <= 1; ++dy) {
                int yy = cy + dy;
                if (yy < 0 || yy >= ncell) continue;
                for (int dx = -1; dx <= 1; ++dx) {
                  int xx = cx + dx;
                  if (xx < 0 || xx >= ncell) continue;
                  int64_t nc = (int64_t(zz) * ncell + yy) * ncell + xx;
                  for (int j = cell_head[size_t(nc)]; j >= 0;
                       j = cell_next[size_t(j)]) {
                    if (j <= i) continue;  // each pair once
                    double rx = pos[3 * i] - pos[3 * j];
                    double ry = pos[3 * i + 1] - pos[3 * j + 1];
                    double rz = pos[3 * i + 2] - pos[3 * j + 2];
                    double r2 = rx * rx + ry * ry + rz * rz;
                    if (r2 >= rc2 || r2 < 1e-12) continue;
                    double inv2 = 1.0 / r2;
                    double inv6 = inv2 * inv2 * inv2;
                    double lj = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                    force[size_t(3 * i)] += lj * rx;
                    force[size_t(3 * i + 1)] += lj * ry;
                    force[size_t(3 * i + 2)] += lj * rz;
                    force[size_t(3 * j)] -= lj * rx;
                    force[size_t(3 * j + 1)] -= lj * ry;
                    force[size_t(3 * j + 2)] -= lj * rz;
                    potential += 4.0 * inv6 * (inv6 - 1.0);
                  }
                }
              }
            }
          }
        }
      }
    }
  };

  compute_forces();
  Stopwatch sw;
  for (uint64_t it = start_iter; it < uint64_t(cfg.iterations); ++it) {
    // Velocity Verlet: kick, drift (with reflecting walls), re-force, kick.
    store.mark_dirty(pos, uint64_t(3 * natoms) * 8);
    store.mark_dirty(vel, uint64_t(3 * natoms) * 8);
    for (int64_t a = 0; a < 3 * natoms; ++a) {
      vel[a] += 0.5 * kDt * force[size_t(a)];
      pos[a] += kDt * vel[a];
    }
    for (int64_t a = 0; a < 3 * natoms; ++a) {
      if (pos[a] < 0) {
        pos[a] = -pos[a];
        vel[a] = -vel[a];
      } else if (pos[a] > box) {
        pos[a] = 2 * box - pos[a];
        vel[a] = -vel[a];
      }
    }
    compute_forces();
    for (int64_t a = 0; a < 3 * natoms; ++a) {
      vel[a] += 0.5 * kDt * force[size_t(a)];
    }

    // CoMD reports global energy each step: a cross-rank reduction.
    if (comm != nullptr) {
      double ke = 0;
      for (int64_t a = 0; a < 3 * natoms; ++a) ke += 0.5 * vel[a] * vel[a];
      (void)comm->allreduce_sum(rank, ke + potential);
    }

    ++res.iterations_done;
    if (cfg.ckpt_every > 0 && (it + 1) % uint64_t(cfg.ckpt_every) == 0) {
      store.set_iteration(it + 1);
      store.checkpoint();
    }
  }
  res.elapsed_s = sw.elapsed_sec();
  res.checkpoint_s = store.checkpoint_seconds();

  double ke = 0;
  for (int64_t a = 0; a < 3 * natoms; ++a) ke += 0.5 * vel[a] * vel[a];
  res.checksum = ke + potential;
  res.state_bytes = store.state_bytes();
  res.checkpoint_bytes = store.checkpoint_bytes();
  res.storage_bytes = store.storage_bytes();
  res.dram_bytes = store.dram_bytes();
  return res;
}

}  // namespace crpm
