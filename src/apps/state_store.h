// StateStore: pluggable program-state management for the mini-apps.
//
// The paper ports LULESH / HPCCG / CoMD to checkpoint-recovery "by
// replacing memory allocation functions and adding checkpoint logic"
// (Section 5.2.2). StateStore is that porting layer: an application
// allocates its state arrays through it, marks the arrays it rewrites each
// iteration, and calls checkpoint() every N iterations. Three backends:
//
//   kNone          plain DRAM arrays, no persistence (the 1.0 baseline of
//                  Figure 8)
//   kFti           plain DRAM arrays protected by the FTI-like library
//                  (full serialized checkpoints to files)
//   kCrpmBuffered  arrays in a libcrpm buffered container (DRAM working
//                  state, differential NVM checkpoints)
//   kCrpmDefault   working state directly in the NVM container (Section
//                  3.4), optionally with async checkpointing and a
//                  snapshot archive attached — the configuration the
//                  crpm_kvd server (src/net) embeds
//
// Multi-rank apps pass a SimComm; checkpoints are then coordinated
// (Section 3.6) and recovery agrees on the global minimum epoch.
//
// Recovery for the crpm backends is multi-level: a healthy container file
// recovers in place (kLocal); with an archive configured, a missing or
// structurally invalid container file is re-materialized from the newest
// restorable archived epoch (kArchive) before opening — the same
// snapshot::restore() path replica pulls use. last_recovery() reports
// which level ran.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fti.h"
#include "comm/sim_comm.h"
#include "core/container.h"
#include "core/heap.h"
#include "snapshot/writer.h"

namespace crpm {

enum class CkptBackend { kNone, kFti, kCrpmBuffered, kCrpmDefault };

const char* backend_name(CkptBackend b);

// Which level of the recovery hierarchy produced the current state.
enum class RecoverySource { kFresh, kLocal, kArchive };

const char* recovery_source_name(RecoverySource s);

class StateStore {
 public:
  struct Config {
    CkptBackend backend = CkptBackend::kNone;
    std::string dir;          // checkpoint files / containers live here
    int rank = 0;
    SimComm* comm = nullptr;  // null for single-rank apps
    uint64_t capacity_bytes = 64 << 20;  // crpm container sizing (0 = let
                                         // the caller compute from state)
    CostModel cost_model = CostModel::disabled();

    // kCrpmDefault extras (ignored by the other backends): concurrent
    // background checkpointing (DESIGN §10) and a snapshot archive
    // (DESIGN §5) that doubles as the second recovery level.
    bool async_checkpoint = false;
    uint32_t async_workers = 1;
    // Multi-window commit pipeline (async only): tolerated in-flight
    // capture windows and commit-shard domains (see CrpmOptions).
    uint32_t max_inflight_epochs = 1;
    uint32_t commit_shards = 1;
    bool archive = false;                // <dir>/crpm-rank<N>.snap
    uint32_t archive_compact_every = 0;
    // Worker threads for the archive-restore record apply (second
    // recovery level); 0/1 = serial. See CrpmOptions::restore_workers.
    uint32_t restore_workers = 0;
    // Route the archive through src/tier: lzb codec, four-epoch group
    // commit (bounded by the default flush deadline, so a lone durable
    // epoch still reaches the device promptly), threaded writeback.
    bool archive_tier = false;
  };

  explicit StateStore(const Config& cfg);
  ~StateStore();

  // Filesystem layout of the crpm backends: where a given (dir, rank)
  // keeps its container and snapshot archive. Exposed so servers (and
  // offline tools) can triage recovery before constructing the store.
  static std::string container_path(const std::string& dir, int rank);
  static std::string archive_path(const std::string& dir, int rank);

  // Recovery triage over the container file at `path`. The distinction
  // between kInvalid and kUnreadable is load-bearing: only a header that
  // was actually READ and is definitively not a container (wrong magic,
  // torn format, too small to ever have been one) may be set aside and
  // reformatted; a transient read failure (fd exhaustion, EACCES) says
  // nothing about the bytes, and treating it as damage would destroy a
  // healthy container.
  enum class ContainerTriage {
    kMissing,     // no file: fresh start (or archive restore)
    kUsable,      // header read, magic + initialized check out
    kInvalid,     // header read, definitively not a valid container
    kUnreadable,  // the file exists but could not be read — not evidence
  };
  static ContainerTriage triage_container_file(const std::string& path);

  // True if `path` plausibly holds an openable container: the file
  // exists, covers at least a MetaHeader, and the header carries the
  // right magic and the initialized flag. Container::open() aborts on
  // structural damage, so recovery triage has to check before opening.
  static bool container_file_usable(const std::string& path);

  // Allocates (or re-attaches, after recovery) array `slot` of `count`
  // elements. Slots must be allocated in the same order and size across
  // restarts. T must be trivially copyable.
  template <typename T>
  T* array(uint32_t slot, uint64_t count) {
    return static_cast<T*>(raw_array(slot, count * sizeof(T)));
  }

  // True if this run restored state from a previous checkpoint. Call only
  // after ALL arrays have been allocated: for the FTI backend this is the
  // point where the protect list is complete and recovery actually loads
  // the buffers (FTI's contract).
  bool recovered() {
    finalize_recovery_probe();
    return recovered_;
  }

  // The recovered iteration counter (0 on fresh runs); the app stores its
  // progress here before each checkpoint. Like recovered(), valid after
  // all arrays are allocated.
  uint64_t iteration() {
    finalize_recovery_probe();
    return iteration_;
  }
  void set_iteration(uint64_t it) { iteration_ = it; }

  // Declares [p, p + bytes) modified since the last checkpoint. Required
  // for kCrpmBuffered (it drives the dirty-block bitmap); no-op otherwise.
  void mark_dirty(const void* p, uint64_t bytes);

  // Persists all state (collective across ranks when a SimComm is set).
  void checkpoint();

  // --- accounting (Figure 8 / Sections 5.5-5.6) -------------------------
  double checkpoint_seconds() const { return ckpt_seconds_; }
  uint64_t checkpoints_taken() const { return ckpts_; }
  uint64_t state_bytes() const;      // live program state
  uint64_t storage_bytes() const;    // NVM/file footprint
  uint64_t dram_bytes() const;       // extra DRAM (buffers, bitmaps)
  uint64_t checkpoint_bytes() const; // data written across all checkpoints
  double last_recovery_seconds() const { return recovery_seconds_; }

  Container* container() { return ctr_.get(); }
  // The allocator over the container's working state (crpm backends only;
  // null otherwise). Exposed so servers can layer persistent containers
  // (e.g. PHashMap via CrpmRefPolicy) over the same store.
  Heap* heap() { return heap_.get(); }
  // The attached archive writer (null unless cfg.archive); exposed for
  // stats reporting — benches read writer_stats() after draining.
  snapshot::ArchiveWriter* archive_writer() { return archive_.get(); }
  RecoverySource last_recovery() const { return recovery_source_; }

 private:
  void* raw_array(uint32_t slot, uint64_t bytes);
  void finalize_recovery_probe();

  Config cfg_;
  bool recovered_ = false;
  uint64_t iteration_ = 0;
  double ckpt_seconds_ = 0;
  double recovery_seconds_ = 0;
  uint64_t ckpts_ = 0;

  // kNone / kFti
  std::vector<std::unique_ptr<uint8_t[]>> plain_arrays_;
  std::vector<std::pair<void*, uint64_t>> registered_;
  std::unique_ptr<FtiLike> fti_;
  bool fti_recover_pending_ = false;

  // kCrpmBuffered / kCrpmDefault
  std::unique_ptr<NvmDevice> owned_dev_;  // when coordinated_open is used
  std::unique_ptr<Container> ctr_;
  std::unique_ptr<Heap> heap_;
  // Declared after ctr_ so the writer detaches before the container dies.
  std::unique_ptr<snapshot::ArchiveWriter> archive_;
  RecoverySource recovery_source_ = RecoverySource::kFresh;
};

}  // namespace crpm
