// StateStore: pluggable program-state management for the mini-apps.
//
// The paper ports LULESH / HPCCG / CoMD to checkpoint-recovery "by
// replacing memory allocation functions and adding checkpoint logic"
// (Section 5.2.2). StateStore is that porting layer: an application
// allocates its state arrays through it, marks the arrays it rewrites each
// iteration, and calls checkpoint() every N iterations. Three backends:
//
//   kNone          plain DRAM arrays, no persistence (the 1.0 baseline of
//                  Figure 8)
//   kFti           plain DRAM arrays protected by the FTI-like library
//                  (full serialized checkpoints to files)
//   kCrpmBuffered  arrays in a libcrpm buffered container (DRAM working
//                  state, differential NVM checkpoints)
//
// Multi-rank apps pass a SimComm; checkpoints are then coordinated
// (Section 3.6) and recovery agrees on the global minimum epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fti.h"
#include "comm/sim_comm.h"
#include "core/container.h"
#include "core/heap.h"

namespace crpm {

enum class CkptBackend { kNone, kFti, kCrpmBuffered };

const char* backend_name(CkptBackend b);

class StateStore {
 public:
  struct Config {
    CkptBackend backend = CkptBackend::kNone;
    std::string dir;          // checkpoint files / containers live here
    int rank = 0;
    SimComm* comm = nullptr;  // null for single-rank apps
    uint64_t capacity_bytes = 64 << 20;  // crpm container sizing (0 = let
                                         // the caller compute from state)
    CostModel cost_model = CostModel::disabled();
  };

  explicit StateStore(const Config& cfg);
  ~StateStore();

  // Allocates (or re-attaches, after recovery) array `slot` of `count`
  // elements. Slots must be allocated in the same order and size across
  // restarts. T must be trivially copyable.
  template <typename T>
  T* array(uint32_t slot, uint64_t count) {
    return static_cast<T*>(raw_array(slot, count * sizeof(T)));
  }

  // True if this run restored state from a previous checkpoint. Call only
  // after ALL arrays have been allocated: for the FTI backend this is the
  // point where the protect list is complete and recovery actually loads
  // the buffers (FTI's contract).
  bool recovered() {
    finalize_recovery_probe();
    return recovered_;
  }

  // The recovered iteration counter (0 on fresh runs); the app stores its
  // progress here before each checkpoint. Like recovered(), valid after
  // all arrays are allocated.
  uint64_t iteration() {
    finalize_recovery_probe();
    return iteration_;
  }
  void set_iteration(uint64_t it) { iteration_ = it; }

  // Declares [p, p + bytes) modified since the last checkpoint. Required
  // for kCrpmBuffered (it drives the dirty-block bitmap); no-op otherwise.
  void mark_dirty(const void* p, uint64_t bytes);

  // Persists all state (collective across ranks when a SimComm is set).
  void checkpoint();

  // --- accounting (Figure 8 / Sections 5.5-5.6) -------------------------
  double checkpoint_seconds() const { return ckpt_seconds_; }
  uint64_t checkpoints_taken() const { return ckpts_; }
  uint64_t state_bytes() const;      // live program state
  uint64_t storage_bytes() const;    // NVM/file footprint
  uint64_t dram_bytes() const;       // extra DRAM (buffers, bitmaps)
  uint64_t checkpoint_bytes() const; // data written across all checkpoints
  double last_recovery_seconds() const { return recovery_seconds_; }

  Container* container() { return ctr_.get(); }

 private:
  void* raw_array(uint32_t slot, uint64_t bytes);
  void finalize_recovery_probe();

  Config cfg_;
  bool recovered_ = false;
  uint64_t iteration_ = 0;
  double ckpt_seconds_ = 0;
  double recovery_seconds_ = 0;
  uint64_t ckpts_ = 0;

  // kNone / kFti
  std::vector<std::unique_ptr<uint8_t[]>> plain_arrays_;
  std::vector<std::pair<void*, uint64_t>> registered_;
  std::unique_ptr<FtiLike> fti_;
  bool fti_recover_pending_ = false;

  // kCrpmBuffered
  std::unique_ptr<NvmDevice> owned_dev_;  // when coordinated_open is used
  std::unique_ptr<Container> ctr_;
  std::unique_ptr<Heap> heap_;
};

}  // namespace crpm
