// HPCCG stand-in: conjugate gradient on a 27-point Poisson-like operator
// over an nx x ny x nz grid per rank, ranks stacked along z (the original
// Mantevo HPCCG decomposition). The checkpointed state is the CG vectors
// x, r, p plus the scalar recurrence (rtrans) and the iteration counter —
// exactly what a restart needs; the matrix and right-hand side are
// regenerated deterministically.
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/miniapp.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace crpm {

namespace {

// 27-point stencil: diagonal 26, off-diagonals -1 (HPCCG's generated
// matrix). Rows at the global domain boundary simply have fewer
// off-diagonal terms.
struct Grid {
  int nx, ny, nz_local, rank, nranks;
  int64_t nrow() const { return int64_t(nx) * ny * nz_local; }
  int64_t idx(int x, int y, int z) const {
    return (int64_t(z) * ny + y) * nx + x;
  }
};

// y = A * p. `p` has one halo plane before and after the local planes:
// p[-1 plane] and p[nz_local plane] hold neighbour data (zero at domain
// boundary). Index into p is therefore idx(x, y, z + 1).
void matvec(const Grid& g, const double* p_with_halo, double* out) {
  const int64_t plane = int64_t(g.nx) * g.ny;
  for (int z = 0; z < g.nz_local; ++z) {
    bool zlo_edge = g.rank == 0 && z == 0;
    bool zhi_edge = g.rank == g.nranks - 1 && z == g.nz_local - 1;
    for (int y = 0; y < g.ny; ++y) {
      for (int x = 0; x < g.nx; ++x) {
        double sum = 26.0 * p_with_halo[(z + 1) * plane + g.idx(x, y, 0)];
        for (int dz = -1; dz <= 1; ++dz) {
          if (dz == -1 && zlo_edge) continue;
          if (dz == 1 && zhi_edge) continue;
          for (int dy = -1; dy <= 1; ++dy) {
            int yy = y + dy;
            if (yy < 0 || yy >= g.ny) continue;
            for (int dx = -1; dx <= 1; ++dx) {
              int xx = x + dx;
              if (xx < 0 || xx >= g.nx) continue;
              if (dx == 0 && dy == 0 && dz == 0) continue;
              sum -= p_with_halo[(z + 1 + dz) * plane + g.idx(xx, yy, 0)];
            }
          }
        }
        out[g.idx(x, y, z)] = sum;
      }
    }
  }
}

double dot_local(const double* a, const double* b, int64_t n) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double reduce_sum(SimComm* comm, int rank, double v) {
  return comm != nullptr ? comm->allreduce_sum(rank, v) : v;
}

}  // namespace

MiniAppResult run_hpccg(const MiniAppConfig& cfg) {
  Grid g;
  g.nx = g.ny = cfg.size;
  g.nz_local = cfg.size;
  g.rank = cfg.store.rank;
  g.nranks = cfg.store.comm != nullptr ? cfg.store.comm->nranks() : 1;
  const int64_t nrow = g.nrow();
  const int64_t plane = int64_t(g.nx) * g.ny;

  StateStore::Config store_cfg = cfg.store;
  if (store_cfg.capacity_bytes == 0) {
    store_cfg.capacity_bytes = uint64_t(nrow) * 8 * 3 * 3 / 2 + (2 << 20);
  }
  StateStore store(store_cfg);
  auto* x = store.array<double>(0, uint64_t(nrow));
  auto* r = store.array<double>(1, uint64_t(nrow));
  auto* p = store.array<double>(2, uint64_t(nrow));
  auto* scalars = store.array<double>(3, 4);  // [rtrans]

  // Transient (regenerated) data: b and the halo'd copy of p.
  std::vector<double> b(static_cast<size_t>(nrow));
  std::vector<double> p_halo(static_cast<size_t>(nrow + 2 * plane), 0.0);
  std::vector<double> Ap(static_cast<size_t>(nrow));

  // b = A * ones: exact solution is x == 1 everywhere.
  {
    std::vector<double> ones(static_cast<size_t>(nrow + 2 * plane), 1.0);
    if (g.rank == 0) std::fill_n(ones.begin(), size_t(plane), 0.0);
    if (g.rank == g.nranks - 1) {
      std::fill(ones.end() - plane, ones.end(), 0.0);
    }
    matvec(g, ones.data(), b.data());
  }

  MiniAppResult res;
  res.resumed = store.recovered();
  uint64_t start_iter = store.iteration();
  res.start_iteration = start_iter;
  res.recovery_s = store.last_recovery_seconds();
  if (store.container() != nullptr) {
    res.recovery_sync_s =
        double(store.container()->recovery_sync_ns()) * 1e-9;
  }

  if (!res.resumed) {
    // x = 0, r = p = b, rtrans = <r, r>.
    store.mark_dirty(x, uint64_t(nrow) * 8);
    store.mark_dirty(r, uint64_t(nrow) * 8);
    store.mark_dirty(p, uint64_t(nrow) * 8);
    store.mark_dirty(scalars, 4 * 8);
    std::memset(x, 0, size_t(nrow) * 8);
    std::memcpy(r, b.data(), size_t(nrow) * 8);
    std::memcpy(p, b.data(), size_t(nrow) * 8);
    scalars[0] = reduce_sum(cfg.store.comm, g.rank,
                            dot_local(r, r, nrow));
  }
  double rtrans = scalars[0];

  SimComm* comm = cfg.store.comm;
  Stopwatch sw;
  for (uint64_t it = start_iter; it < uint64_t(cfg.iterations); ++it) {
    // Halo exchange of p (shared-memory ranks).
    std::memcpy(p_halo.data() + plane, p, size_t(nrow) * 8);
    if (comm != nullptr) {
      comm->publish(g.rank, p);
      comm->barrier();
      if (g.rank > 0) {
        const auto* lo = static_cast<const double*>(comm->peer(g.rank - 1));
        std::memcpy(p_halo.data(), lo + (g.nz_local - 1) * plane,
                    size_t(plane) * 8);
      }
      if (g.rank < g.nranks - 1) {
        const auto* hi = static_cast<const double*>(comm->peer(g.rank + 1));
        std::memcpy(p_halo.data() + plane + nrow, hi, size_t(plane) * 8);
      }
      comm->barrier();
    }

    matvec(g, p_halo.data(), Ap.data());
    double pAp =
        reduce_sum(comm, g.rank, dot_local(p, Ap.data(), nrow));
    double alpha = rtrans / pAp;

    store.mark_dirty(x, uint64_t(nrow) * 8);
    store.mark_dirty(r, uint64_t(nrow) * 8);
    for (int64_t i = 0; i < nrow; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    double old_rtrans = rtrans;
    rtrans = reduce_sum(comm, g.rank, dot_local(r, r, nrow));
    double beta = rtrans / old_rtrans;
    store.mark_dirty(p, uint64_t(nrow) * 8);
    for (int64_t i = 0; i < nrow; ++i) p[i] = r[i] + beta * p[i];

    ++res.iterations_done;
    if (cfg.ckpt_every > 0 && (it + 1) % uint64_t(cfg.ckpt_every) == 0) {
      store.mark_dirty(scalars, 4 * 8);
      scalars[0] = rtrans;
      store.set_iteration(it + 1);
      store.checkpoint();
    }
  }
  res.elapsed_s = sw.elapsed_sec();
  res.checkpoint_s = store.checkpoint_seconds();
  res.checksum = std::sqrt(rtrans);
  res.state_bytes = store.state_bytes();
  res.checkpoint_bytes = store.checkpoint_bytes();
  res.storage_bytes = store.storage_bytes();
  res.dram_bytes = store.dram_bytes();
  return res;
}

}  // namespace crpm
