#include "apps/state_store.h"

#include <cstring>
#include <filesystem>

#include "comm/coordinated.h"
#include "core/layout.h"
#include "snapshot/restore.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace crpm {

namespace {
constexpr uint32_t kIterationRoot = kNumRoots - 1;  // crpm root slot
constexpr int kIterationFtiId = 1 << 20;            // FTI buffer id
}  // namespace

const char* backend_name(CkptBackend b) {
  switch (b) {
    case CkptBackend::kNone: return "no-checkpoint";
    case CkptBackend::kFti: return "FTI";
    case CkptBackend::kCrpmBuffered: return "libcrpm-Buffered";
    case CkptBackend::kCrpmDefault: return "libcrpm-Default";
  }
  return "?";
}

const char* recovery_source_name(RecoverySource s) {
  switch (s) {
    case RecoverySource::kFresh: return "fresh";
    case RecoverySource::kLocal: return "local";
    case RecoverySource::kArchive: return "archive";
  }
  return "?";
}

std::string StateStore::container_path(const std::string& dir, int rank) {
  return dir + "/crpm-rank" + std::to_string(rank) + ".ctr";
}

std::string StateStore::archive_path(const std::string& dir, int rank) {
  return dir + "/crpm-rank" + std::to_string(rank) + ".snap";
}

StateStore::ContainerTriage StateStore::triage_container_file(
    const std::string& path) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (ec) return ContainerTriage::kUnreadable;
  if (!exists) return ContainerTriage::kMissing;
  auto size = std::filesystem::file_size(path, ec);
  if (ec) return ContainerTriage::kUnreadable;
  // A container file is never smaller than its header: too-small is a
  // definitive verdict, not a read failure.
  if (size < sizeof(MetaHeader)) return ContainerTriage::kInvalid;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ContainerTriage::kUnreadable;
  MetaHeader h{};
  size_t got = std::fread(&h, 1, sizeof(h), f);
  std::fclose(f);
  // The size check above said these bytes exist; a short read is an I/O
  // error, not evidence about the contents.
  if (got != sizeof(h)) return ContainerTriage::kUnreadable;
  return (h.magic == kMetaMagic && h.initialized != 0)
             ? ContainerTriage::kUsable
             : ContainerTriage::kInvalid;
}

bool StateStore::container_file_usable(const std::string& path) {
  return triage_container_file(path) == ContainerTriage::kUsable;
}

StateStore::StateStore(const Config& cfg) : cfg_(cfg) {
  switch (cfg_.backend) {
    case CkptBackend::kNone:
      break;
    case CkptBackend::kFti: {
      fti_ = std::make_unique<FtiLike>(cfg_.dir, cfg_.rank);
      if (cfg_.cost_model.enabled) {
        // FTI's checkpoint files live on the same (emulated) NVM.
        fti_->set_write_cost_ns_per_line(cfg_.cost_model.nt_store_ns_per_line);
      }
      // The iteration counter is protected like any other state buffer.
      plain_arrays_.push_back(std::make_unique<uint8_t[]>(8));
      std::memset(plain_arrays_.back().get(), 0, 8);
      fti_->protect(kIterationFtiId, plain_arrays_.back().get(), 8);
      fti_recover_pending_ = true;
      break;
    }
    case CkptBackend::kCrpmBuffered:
    case CkptBackend::kCrpmDefault: {
      const bool buffered = cfg_.backend == CkptBackend::kCrpmBuffered;
      CrpmOptions opt;
      opt.buffered = buffered;
      opt.main_region_size = cfg_.capacity_bytes;
      std::string path = container_path(cfg_.dir, cfg_.rank);
      if (!buffered) {
        opt.async_checkpoint = cfg_.async_checkpoint;
        opt.async_workers = cfg_.async_workers;
        opt.max_inflight_epochs = cfg_.max_inflight_epochs;
        opt.commit_shards = cfg_.commit_shards;
        opt.restore_workers = cfg_.restore_workers;
        if (cfg_.async_checkpoint) opt.eager_cow_segments = 0;
        if (cfg_.archive) {
          opt.archive_path = archive_path(cfg_.dir, cfg_.rank);
          opt.archive_compact_every = cfg_.archive_compact_every;
          if (cfg_.archive_tier) {
            opt.archive_codec = "lzb";
            opt.archive_group_epochs = 4;
            opt.archive_writeback = "threads";
            // Checkpoint cadences are tens of ms; a deadline shorter than
            // the cadence degenerates group commit to one fsync per epoch.
            // The archive is the second recovery level (durable acks wait
            // on the container epoch, not on archive writeback), so a
            // 100 ms archive-durability lag trades nothing the service
            // promised away.
            opt.archive_flush_deadline_us = 100'000;
            // Group commit parks frames until the batch cuts; a queue
            // deep enough to hold several batches keeps the committing
            // thread from stalling against the writer (the stall lands
            // inside the capture window and shows up as serving tail).
            opt.archive_queue_depth = 32;
            // Compaction needs somewhere to retire folded epochs; keep
            // the cold tier on whenever the fold is.
            opt.archive_cold = cfg_.archive_compact_every != 0;
          }
        }
      }
      const ContainerTriage triage = triage_container_file(path);
      // An unreadable file is NOT a triage verdict: the bytes may well be
      // a healthy container we just failed to read (fd exhaustion,
      // EACCES). Abort loudly rather than risk destroying it below.
      CRPM_CHECK(triage != ContainerTriage::kUnreadable,
                 "container file %s exists but could not be read; "
                 "refusing to triage it as damaged",
                 path.c_str());
      recovery_source_ = triage == ContainerTriage::kUsable
                             ? RecoverySource::kLocal
                             : RecoverySource::kFresh;
      // Second recovery level: a missing or invalid container file is
      // rebuilt from the newest restorable archived epoch, if any.
      if (recovery_source_ != RecoverySource::kLocal) {
        if (!opt.archive_path.empty() &&
            std::filesystem::exists(opt.archive_path)) {
          auto res = snapshot::restore_file(
              opt.archive_path, Container::kLatestEpoch, path, opt);
          if (res.container != nullptr) {
            res.container.reset();  // re-opened below via the normal path
            recovery_source_ = RecoverySource::kArchive;
          }
        }
        // No archive could rebuild it. A definitively-invalid file (the
        // header was read and carries wrong magic / torn format) is set
        // aside as <path>.damaged — never deleted — so the open below
        // formats fresh while the operator keeps the bytes for salvage.
        if (recovery_source_ != RecoverySource::kArchive &&
            triage == ContainerTriage::kInvalid) {
          const std::string damaged = path + ".damaged";
          std::error_code ec;
          std::filesystem::rename(path, damaged, ec);
          CRPM_CHECK(!ec, "could not set aside damaged container %s: %s",
                     path.c_str(), ec.message().c_str());
          CRPM_LOG_WARN(
              "container %s is not a valid container and no archive could "
              "rebuild it; preserved as %s, formatting fresh",
              path.c_str(), damaged.c_str());
        }
        std::error_code ec;
        std::filesystem::remove(path + ".restoring", ec);
      }
      auto dev = std::make_unique<FileNvmDevice>(
          path, Container::required_device_size(opt));
      dev->set_cost_model(cfg_.cost_model);
      Stopwatch sw;
      if (cfg_.comm != nullptr) {
        // Keep the device alive alongside the container.
        NvmDevice* raw = dev.get();
        owned_dev_ = std::move(dev);
        auto opened = coordinated_open(*cfg_.comm, cfg_.rank, raw, opt);
        ctr_ = std::move(opened.container);
      } else {
        ctr_ = Container::open(std::move(dev), opt);
      }
      recovery_seconds_ = sw.elapsed_sec();
      heap_ = std::make_unique<Heap>(*ctr_);
      archive_ = snapshot::ArchiveWriter::attach_if_configured(*ctr_);
      recovered_ = !ctr_->was_fresh();
      if (!recovered_) recovery_source_ = RecoverySource::kFresh;
      if (recovered_) {
        uint64_t off = ctr_->get_root(kIterationRoot);
        CRPM_CHECK(off != 0, "recovered container missing iteration root");
        iteration_ = *static_cast<uint64_t*>(ctr_->from_offset(off));
      } else {
        auto* it = static_cast<uint64_t*>(heap_->allocate(sizeof(uint64_t)));
        ctr_->annotate(it, sizeof(uint64_t));
        *it = 0;
        ctr_->set_root(kIterationRoot, ctr_->to_offset(it));
      }
      break;
    }
  }
}

StateStore::~StateStore() {
  if (ctr_ != nullptr && archive_ != nullptr) {
    ctr_->wait_committed();
    archive_->drain();
    ctr_->set_epoch_sink(nullptr);
  }
}

void* StateStore::raw_array(uint32_t slot, uint64_t bytes) {
  if (cfg_.backend == CkptBackend::kCrpmBuffered ||
      cfg_.backend == CkptBackend::kCrpmDefault) {
    CRPM_CHECK(slot < kIterationRoot, "slot %u reserved", slot);
    void* p;
    if (recovered_) {
      uint64_t off = ctr_->get_root(slot);
      CRPM_CHECK(off != 0, "recovered container missing array slot %u",
                 slot);
      p = ctr_->from_offset(off);
    } else {
      p = heap_->allocate(bytes);
      ctr_->annotate(p, bytes);
      std::memset(p, 0, bytes);
      ctr_->set_root(slot, ctr_->to_offset(p));
    }
    registered_.emplace_back(p, bytes);
    return p;
  }
  plain_arrays_.push_back(std::make_unique<uint8_t[]>(bytes));
  void* p = plain_arrays_.back().get();
  std::memset(p, 0, bytes);
  registered_.emplace_back(p, bytes);
  if (cfg_.backend == CkptBackend::kFti) {
    fti_->protect(static_cast<int>(slot), p, bytes);
  }
  return p;
}

void StateStore::finalize_recovery_probe() {
  if (!fti_recover_pending_) return;
  fti_recover_pending_ = false;
  Stopwatch sw;
  if (fti_->recover()) {
    recovered_ = true;
    std::memcpy(&iteration_, plain_arrays_.front().get(), 8);
  }
  recovery_seconds_ = sw.elapsed_sec();
}

void StateStore::mark_dirty(const void* p, uint64_t bytes) {
  if (ctr_ != nullptr) ctr_->annotate(p, bytes);
}

void StateStore::checkpoint() {
  Stopwatch sw;
  switch (cfg_.backend) {
    case CkptBackend::kNone:
      return;
    case CkptBackend::kFti: {
      finalize_recovery_probe();
      std::memcpy(plain_arrays_.front().get(), &iteration_, 8);
      fti_->checkpoint();
      if (cfg_.comm != nullptr) cfg_.comm->barrier();
      break;
    }
    case CkptBackend::kCrpmBuffered:
    case CkptBackend::kCrpmDefault: {
      uint64_t off = ctr_->get_root(kIterationRoot);
      auto* it = static_cast<uint64_t*>(ctr_->from_offset(off));
      ctr_->annotate(it, sizeof(uint64_t));
      *it = iteration_;
      if (cfg_.comm != nullptr) {
        coordinated_checkpoint(*cfg_.comm, *ctr_);
      } else {
        ctr_->checkpoint();
      }
      break;
    }
  }
  ckpt_seconds_ += sw.elapsed_sec();
  ++ckpts_;
}

uint64_t StateStore::state_bytes() const {
  uint64_t total = 0;
  for (const auto& [p, n] : registered_) total += n;
  return total;
}

uint64_t StateStore::storage_bytes() const {
  switch (cfg_.backend) {
    case CkptBackend::kNone: return 0;
    case CkptBackend::kFti: return fti_->checkpoint_state_bytes();
    case CkptBackend::kCrpmBuffered:
    case CkptBackend::kCrpmDefault: return ctr_->nvm_bytes();
  }
  return 0;
}

uint64_t StateStore::dram_bytes() const {
  return ctr_ != nullptr ? ctr_->dram_bytes() : 0;
}

uint64_t StateStore::checkpoint_bytes() const {
  switch (cfg_.backend) {
    case CkptBackend::kNone: return 0;
    case CkptBackend::kFti: return fti_->bytes_written();
    case CkptBackend::kCrpmBuffered:
    case CkptBackend::kCrpmDefault:
      return ctr_->stats().snapshot().checkpoint_bytes;
  }
  return 0;
}

}  // namespace crpm
