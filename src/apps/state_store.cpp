#include "apps/state_store.h"

#include <cstring>

#include "comm/coordinated.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace crpm {

namespace {
constexpr uint32_t kIterationRoot = kNumRoots - 1;  // crpm root slot
constexpr int kIterationFtiId = 1 << 20;            // FTI buffer id
}  // namespace

const char* backend_name(CkptBackend b) {
  switch (b) {
    case CkptBackend::kNone: return "no-checkpoint";
    case CkptBackend::kFti: return "FTI";
    case CkptBackend::kCrpmBuffered: return "libcrpm-Buffered";
  }
  return "?";
}

StateStore::StateStore(const Config& cfg) : cfg_(cfg) {
  switch (cfg_.backend) {
    case CkptBackend::kNone:
      break;
    case CkptBackend::kFti: {
      fti_ = std::make_unique<FtiLike>(cfg_.dir, cfg_.rank);
      if (cfg_.cost_model.enabled) {
        // FTI's checkpoint files live on the same (emulated) NVM.
        fti_->set_write_cost_ns_per_line(cfg_.cost_model.nt_store_ns_per_line);
      }
      // The iteration counter is protected like any other state buffer.
      plain_arrays_.push_back(std::make_unique<uint8_t[]>(8));
      std::memset(plain_arrays_.back().get(), 0, 8);
      fti_->protect(kIterationFtiId, plain_arrays_.back().get(), 8);
      fti_recover_pending_ = true;
      break;
    }
    case CkptBackend::kCrpmBuffered: {
      CrpmOptions opt;
      opt.buffered = true;
      opt.main_region_size = cfg_.capacity_bytes;
      std::string path =
          cfg_.dir + "/crpm-rank" + std::to_string(cfg_.rank) + ".ctr";
      auto dev = std::make_unique<FileNvmDevice>(
          path, Container::required_device_size(opt));
      dev->set_cost_model(cfg_.cost_model);
      Stopwatch sw;
      if (cfg_.comm != nullptr) {
        // Keep the device alive alongside the container.
        NvmDevice* raw = dev.get();
        owned_dev_ = std::move(dev);
        auto opened = coordinated_open(*cfg_.comm, cfg_.rank, raw, opt);
        ctr_ = std::move(opened.container);
      } else {
        ctr_ = Container::open(std::move(dev), opt);
      }
      recovery_seconds_ = sw.elapsed_sec();
      heap_ = std::make_unique<Heap>(*ctr_);
      recovered_ = !ctr_->was_fresh();
      if (recovered_) {
        uint64_t off = ctr_->get_root(kIterationRoot);
        CRPM_CHECK(off != 0, "recovered container missing iteration root");
        iteration_ = *static_cast<uint64_t*>(ctr_->from_offset(off));
      } else {
        auto* it = static_cast<uint64_t*>(heap_->allocate(sizeof(uint64_t)));
        ctr_->annotate(it, sizeof(uint64_t));
        *it = 0;
        ctr_->set_root(kIterationRoot, ctr_->to_offset(it));
      }
      break;
    }
  }
}

StateStore::~StateStore() = default;

void* StateStore::raw_array(uint32_t slot, uint64_t bytes) {
  if (cfg_.backend == CkptBackend::kCrpmBuffered) {
    CRPM_CHECK(slot < kIterationRoot, "slot %u reserved", slot);
    void* p;
    if (recovered_) {
      uint64_t off = ctr_->get_root(slot);
      CRPM_CHECK(off != 0, "recovered container missing array slot %u",
                 slot);
      p = ctr_->from_offset(off);
    } else {
      p = heap_->allocate(bytes);
      ctr_->annotate(p, bytes);
      std::memset(p, 0, bytes);
      ctr_->set_root(slot, ctr_->to_offset(p));
    }
    registered_.emplace_back(p, bytes);
    return p;
  }
  plain_arrays_.push_back(std::make_unique<uint8_t[]>(bytes));
  void* p = plain_arrays_.back().get();
  std::memset(p, 0, bytes);
  registered_.emplace_back(p, bytes);
  if (cfg_.backend == CkptBackend::kFti) {
    fti_->protect(static_cast<int>(slot), p, bytes);
  }
  return p;
}

void StateStore::finalize_recovery_probe() {
  if (!fti_recover_pending_) return;
  fti_recover_pending_ = false;
  Stopwatch sw;
  if (fti_->recover()) {
    recovered_ = true;
    std::memcpy(&iteration_, plain_arrays_.front().get(), 8);
  }
  recovery_seconds_ = sw.elapsed_sec();
}

void StateStore::mark_dirty(const void* p, uint64_t bytes) {
  if (cfg_.backend == CkptBackend::kCrpmBuffered) {
    ctr_->annotate(p, bytes);
  }
}

void StateStore::checkpoint() {
  Stopwatch sw;
  switch (cfg_.backend) {
    case CkptBackend::kNone:
      return;
    case CkptBackend::kFti: {
      finalize_recovery_probe();
      std::memcpy(plain_arrays_.front().get(), &iteration_, 8);
      fti_->checkpoint();
      if (cfg_.comm != nullptr) cfg_.comm->barrier();
      break;
    }
    case CkptBackend::kCrpmBuffered: {
      uint64_t off = ctr_->get_root(kIterationRoot);
      auto* it = static_cast<uint64_t*>(ctr_->from_offset(off));
      ctr_->annotate(it, sizeof(uint64_t));
      *it = iteration_;
      if (cfg_.comm != nullptr) {
        coordinated_checkpoint(*cfg_.comm, *ctr_);
      } else {
        ctr_->checkpoint();
      }
      break;
    }
  }
  ckpt_seconds_ += sw.elapsed_sec();
  ++ckpts_;
}

uint64_t StateStore::state_bytes() const {
  uint64_t total = 0;
  for (const auto& [p, n] : registered_) total += n;
  return total;
}

uint64_t StateStore::storage_bytes() const {
  switch (cfg_.backend) {
    case CkptBackend::kNone: return 0;
    case CkptBackend::kFti: return fti_->checkpoint_state_bytes();
    case CkptBackend::kCrpmBuffered: return ctr_->nvm_bytes();
  }
  return 0;
}

uint64_t StateStore::dram_bytes() const {
  return cfg_.backend == CkptBackend::kCrpmBuffered ? ctr_->dram_bytes() : 0;
}

uint64_t StateStore::checkpoint_bytes() const {
  switch (cfg_.backend) {
    case CkptBackend::kNone: return 0;
    case CkptBackend::kFti: return fti_->bytes_written();
    case CkptBackend::kCrpmBuffered:
      return ctr_->stats().snapshot().checkpoint_bytes;
  }
  return 0;
}

}  // namespace crpm
