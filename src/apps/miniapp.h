// Shared configuration/result types for the parallel-computing mini-apps
// (Section 5.2.2: LULESH, HPCCG, CoMD stand-ins).
//
// Each app allocates its state through a StateStore, runs `iterations`
// compute steps, checkpoints every `ckpt_every` iterations (the paper uses
// five), and transparently resumes from the recovered iteration after a
// restart.
#pragma once

#include <cstdint>

#include "apps/state_store.h"

namespace crpm {

struct MiniAppConfig {
  int size = 24;        // problem dimension per rank (LULESH "90^3" knob)
  int iterations = 60;  // total iterations of the run
  int ckpt_every = 5;   // checkpoint period in iterations (0 = never)
  // store.capacity_bytes == 0 lets the app size its container to the
  // actual program state (recommended: recovery time and storage cost then
  // reflect the state, not the provisioning).
  StateStore::Config store;
};

struct MiniAppResult {
  uint64_t iterations_done = 0;   // iterations executed by THIS run
  bool resumed = false;           // recovered from a checkpoint
  uint64_t start_iteration = 0;   // first iteration of this run
  double elapsed_s = 0;           // wall time of the compute+checkpoint loop
  double checkpoint_s = 0;        // time inside checkpoints
  double recovery_s = 0;          // time restoring state at startup
  double recovery_sync_s = 0;     // ... region-sync portion (crpm only)
  double checksum = 0;            // physics invariant for verification
  uint64_t state_bytes = 0;       // live program state (Section 5.6)
  uint64_t checkpoint_bytes = 0;  // total data written by checkpoints
  uint64_t storage_bytes = 0;     // NVM/file footprint
  uint64_t dram_bytes = 0;        // DRAM buffers + bitmaps (crpm)
};

// Conjugate-gradient solver on a 27-point Poisson operator (HPCCG).
// Multi-rank: z-slab decomposition with halo exchange and dot-product
// reductions through the store's SimComm.
MiniAppResult run_hpccg(const MiniAppConfig& cfg);

// Explicit shock-hydrodynamics-shaped stencil proxy (LULESH): nodal
// position/velocity arrays plus element energy/pressure arrays updated
// each step, with a global dt reduction.
MiniAppResult run_lulesh_proxy(const MiniAppConfig& cfg);

// Lennard-Jones molecular dynamics with cell lists (CoMD): fcc lattice,
// velocity-Verlet integration; positions and velocities are the state.
MiniAppResult run_comd_proxy(const MiniAppConfig& cfg);

}  // namespace crpm
