#include "core/registry.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "util/sync.h"

namespace crpm {

namespace {

struct Entry {
  uintptr_t begin;
  uintptr_t end;
  Container* ctr;
};

// A handful of containers per process; a linear scan under a reader-light
// spinlock is faster than anything fancier at this scale.
SpinLock g_lock;
std::vector<Entry> g_entries;

}  // namespace

void register_container(Container* ctr) {
  auto begin = reinterpret_cast<uintptr_t>(ctr->data());
  std::lock_guard<SpinLock> lk(g_lock);
  g_entries.push_back(Entry{begin, begin + ctr->capacity(), ctr});
}

void deregister_container(Container* ctr) {
  std::lock_guard<SpinLock> lk(g_lock);
  g_entries.erase(std::remove_if(g_entries.begin(), g_entries.end(),
                                 [&](const Entry& e) { return e.ctr == ctr; }),
                  g_entries.end());
}

Container* find_container(const void* addr) {
  auto a = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<SpinLock> lk(g_lock);
  for (const Entry& e : g_entries) {
    if (a >= e.begin && a < e.end) return e.ctr;
  }
  return nullptr;
}

void crpm_annotate(const void* addr, size_t len) {
  Container* c = find_container(addr);
  if (c != nullptr) c->annotate(addr, len);
}

}  // namespace crpm
