// Containers: the libcrpm programming model (Sections 3.2–3.5).
//
// A container is a named persistent region holding the application's program
// state. Opening it maps the latest checkpoint state; crpm_checkpoint()
// atomically promotes the current working state to the new checkpoint state.
//
// Two modes:
//   * DefaultContainer — the working state lives directly in the NVM main
//     region; segment-level copy-on-write protects the checkpoint state
//     (Section 3.4, "libcrpm-Default").
//   * BufferedContainer — the working state lives in DRAM; each checkpoint
//     replicates two generations of dirty blocks into the main or backup
//     region by epoch parity (Section 3.5, "libcrpm-Buffered").
//
// The application contract: before any store to container memory, call
// annotate(addr, len). The paper's LLVM pass inserts those calls
// automatically; in this reproduction the provided persistent containers
// (crpm::pmap, crpm::punordered_map, ...) and the crpm::p<T> wrapper place
// them, and array codes call annotate() on whole arrays per iteration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/async_commit.h"
#include "core/crpm_stats.h"
#include "core/dirty_tracker.h"
#include "core/epoch_sink.h"
#include "core/layout.h"
#include "core/options.h"
#include "nvm/device.h"
#include "util/sync.h"

namespace crpm {

class Container {
 public:
  virtual ~Container() = default;

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  // Recover to the most recent committed epoch.
  static constexpr uint64_t kLatestEpoch = ~uint64_t{0};

  // Opens (recovering) or creates (formatting) a container on `dev`.
  // The non-owning overload is used by tests that keep driving the device
  // (e.g. CrashSimDevice) across simulated restarts.
  //
  // `target_epoch` selects which checkpoint state to recover (Section 3.6):
  // kLatestEpoch recovers the newest commit; committed_epoch - 1 rolls back
  // one epoch using the container's retained history (requires
  // retains_previous_epoch()). Any other value aborts. Rollback must be
  // decided at open time — recovery itself (the backup-refresh of Figure 6,
  // line 50) destroys the older epoch.
  static std::unique_ptr<Container> open(NvmDevice* dev,
                                         const CrpmOptions& opt,
                                         uint64_t target_epoch = kLatestEpoch);
  static std::unique_ptr<Container> open(std::unique_ptr<NvmDevice> dev,
                                         const CrpmOptions& opt,
                                         uint64_t target_epoch = kLatestEpoch);

  // Convenience: file-backed container at `path`.
  static std::unique_ptr<Container> open_file(const std::string& path,
                                              const CrpmOptions& opt);

  // Reads the committed epoch from an unopened (formatted) device without
  // triggering recovery; returns kLatestEpoch if the device holds no
  // initialized container. Used by coordinated recovery to agree on a
  // global epoch before any rank recovers.
  static uint64_t peek_committed_epoch(NvmDevice* dev);

  // Bytes a device must provide for these options.
  static uint64_t required_device_size(const CrpmOptions& opt);

  // --- working-state access -------------------------------------------

  // Base of the working state (main region, or the DRAM buffer in buffered
  // mode). All application objects live inside [data(), data()+capacity()).
  virtual uint8_t* data() = 0;
  uint64_t capacity() const { return geo_.main_region_size(); }

  // Instrumentation hook: marks [addr, addr+len) about to be modified.
  // MUST be called before every store into the working state.
  virtual void annotate(const void* addr, size_t len) = 0;

  // Collective checkpoint: every registered thread (options().thread_count)
  // calls this; the call returns on all threads once the new checkpoint
  // state is committed (Figure 6, crpm_checkpoint). With
  // options().async_checkpoint the call returns once the stop-the-world
  // *capture* phase ends — the commit happens in the background, and
  // wait_committed() completes the synchronous contract.
  virtual void checkpoint() = 0;

  // Blocks until no captured epoch is awaiting its background commit.
  // No-op on synchronous containers. In cooperative async mode
  // (async_workers == 0) the calling thread runs the commit pipeline
  // inline.
  virtual void wait_committed() {}

  // True while a captured epoch's background commit is still in flight.
  virtual bool checkpoint_pending() const { return false; }

  bool contains(const void* addr, size_t len) {
    auto a = reinterpret_cast<uintptr_t>(addr);
    auto b = reinterpret_cast<uintptr_t>(data());
    return a >= b && a + len <= b + capacity();
  }

  // --- offsets and roots ------------------------------------------------

  // Offset 0 is occupied by heap bookkeeping, so 0 doubles as "null".
  uint64_t to_offset(const void* p) {
    return static_cast<uint64_t>(static_cast<const uint8_t*>(p) - data());
  }
  void* from_offset(uint64_t off) { return data() + off; }

  // Root pointer array (Section 3.2): named offsets for retrieving objects
  // after a restart. Root updates are epoch-consistent: like all working
  // state they become durable at the next crpm_checkpoint() and roll back
  // together with the data they reference (the persistent array is
  // double-buffered alongside seg_state).
  void set_root(uint32_t slot, uint64_t off);
  uint64_t get_root(uint32_t slot) const;

  // --- introspection -----------------------------------------------------

  // The committed epoch, read from a DRAM mirror of the persistent
  // counter: in async mode the background pipeline bumps the NVM word
  // concurrently with application threads, so readers must not touch it
  // directly. The mirror is updated with release ordering at every commit
  // (and at open/renumber); it always trails or equals the NVM value.
  uint64_t committed_epoch() const {
    return dram_committed_.load(std::memory_order_acquire);
  }
  // True if open() formatted a fresh container (no prior state existed).
  bool was_fresh() const { return fresh_; }

  // Relabels the committed epoch without touching any data — used after a
  // peer-pull recovery, where snapshot::restore() rebuilds the state into a
  // fresh container whose epoch counter restarts while the surviving ranks
  // continue from the globally agreed epoch. The new number must not move
  // backwards and must preserve the epoch's residue mod the metadata
  // replica count: active_index() (which persistent roots/seg_state copy
  // is live) is committed_epoch % replicas, so any other jump would
  // silently switch to a stale copy. Call between epochs only.
  void renumber_epoch(uint64_t epoch);

  // True if the container still holds epoch e-1 right after committing
  // epoch e, i.e. rollback_one_epoch() is usable for coordinated recovery.
  // Buffered containers always do; default containers only with eager
  // copy-on-write disabled (eager CoW overwrites the backup copy of the
  // previous epoch during the checkpoint itself) and async checkpointing
  // off (the pipeline's finalize stage rebuilds stolen segments' backups
  // from the new epoch's image right after the commit).
  virtual bool retains_previous_epoch() const {
    return opt_.eager_cow_segments == 0 && !opt_.async_checkpoint;
  }

  // Installs (or clears, with nullptr) the post-commit delta observer. The
  // sink is borrowed, not owned; it must outlive the container or be
  // detached before destruction. Called between epochs (not concurrently
  // with checkpoint()).
  void set_epoch_sink(EpochSink* sink) { epoch_sink_ = sink; }
  EpochSink* epoch_sink() const { return epoch_sink_; }

  // Installs (or clears, with nullptr) a commit observer, invoked with the
  // new committed epoch after every durable commit — from the committing
  // thread in sync mode, from a pipeline worker at each joined commit in
  // async worker mode. Lets group-commit clients (src/net) release parked
  // durable responses per commit instead of serializing captures on
  // wait_committed(). Install between epochs; the callback must be
  // thread-safe and must not call back into the container.
  void set_commit_callback(std::function<void(uint64_t)> cb);

  const Geometry& geometry() const { return geo_; }
  const CrpmOptions& options() const { return opt_; }
  NvmDevice* device() { return dev_; }
  CrpmStats& stats() { return stats_; }
  DirtyTracker& tracker() { return *tracker_; }

  // Storage accounting (Section 5.6).
  uint64_t nvm_bytes() const { return geo_.device_size(); }
  uint64_t metadata_bytes() const { return geo_.metadata_size(); }
  virtual uint64_t dram_bytes() const;

  // Recovery-time breakdown of the open that constructed this container
  // (Section 5.5): region synchronization, then (buffered mode) the copy
  // of the main region into DRAM.
  uint64_t recovery_sync_ns() const { return recovery_sync_ns_; }
  uint64_t recovery_load_ns() const { return recovery_load_ns_; }

 protected:
  Container(NvmDevice* dev, std::unique_ptr<NvmDevice> owned,
            const CrpmOptions& opt, uint64_t target_epoch);

  // Formats if pristine, otherwise validates and runs the shared recovery
  // phase (region sync). Called by subclass constructors.
  void open_or_format();

  // Region-sync recovery (Section 3.4.3 / Figure 6 crpm_recovery): restores
  // the invariant main == checkpoint and backup == main for paired segments.
  void region_sync();

  // Rebuilds main_to_backup / free backup list from NVM metadata.
  void rebuild_backup_index();

  int active_index() const {
    return static_cast<int>(committed_epoch() % geo_.meta_replicas());
  }

  // Allocates (or recycles, Section 3.3) a backup segment and durably pairs
  // it with `main_seg`. The pairing is flushed but not fenced; callers fence
  // before depending on it. Aborts if the backup region is exhausted.
  uint32_t alloc_backup(uint64_t main_seg);

  // Writes the working root array into the inactive persistent copy and
  // flushes it (fenced by the caller's pre-commit fence). Leader-only,
  // inside the checkpoint.
  void stage_roots_for_commit();

  // Delivers the delta of the epoch being committed to the attached sink
  // (no-op without one). Leader-only, inside the stop-the-world checkpoint
  // once the epoch's dirty set and values are final — deliberately *before*
  // the flush phase and commit point, so the payload copy reads cache-warm
  // data and the background writer overlaps the remaining checkpoint work.
  // If a crash hits between staging and the commit point the archive ends
  // ahead of the container — up to max_inflight_epochs frames ahead with
  // the multi-window pipeline; ArchiveWriter reconciles (truncates) such
  // never-committed frames when it attaches. `epoch` is the epoch
  // being committed, `data` the base of its working state, `blocks` the
  // modified block indices.
  void notify_epoch_sink(uint64_t epoch, const uint8_t* data,
                         std::vector<uint64_t> blocks);

  // Fires the commit callback (if any) for a freshly durable epoch. Safe
  // from any committing thread; takes a copy of the callback under the
  // lock so set_commit_callback(nullptr) can race a commit.
  void notify_commit(uint64_t epoch);

  NvmDevice* dev_;
  std::unique_ptr<NvmDevice> owned_dev_;
  CrpmOptions opt_;
  Geometry geo_;
  Layout layout_;
  CrpmStats stats_;
  std::unique_ptr<DirtyTracker> tracker_;
  std::unique_ptr<SpinBarrier> barrier_;
  uint64_t target_epoch_ = kLatestEpoch;
  // DRAM mirror of header()->committed_epoch; see committed_epoch().
  std::atomic<uint64_t> dram_committed_{0};
  uint64_t recovery_sync_ns_ = 0;
  uint64_t recovery_load_ns_ = 0;
  bool fresh_ = false;

  // DRAM index over backup_to_main.
  SpinLock alloc_lock_;
  std::vector<uint32_t> main_to_backup_;
  std::vector<uint32_t> free_backups_;
  uint64_t steal_cursor_ = 0;

  // Working copy of the root array; committed with the epoch.
  std::array<uint64_t, kNumRoots> roots_work_{};
  bool roots_dirty_ = false;

  EpochSink* epoch_sink_ = nullptr;

  // Commit observer; see set_commit_callback().
  std::mutex commit_cb_mu_;
  std::function<void(uint64_t)> commit_cb_;
};

// Section 3.4: working state in NVM, segment-level copy-on-write.
class DefaultContainer final : public Container {
 public:
  DefaultContainer(NvmDevice* dev, std::unique_ptr<NvmDevice> owned,
                   const CrpmOptions& opt,
                   uint64_t target_epoch = kLatestEpoch);
  // With async workers, drains the in-flight window before tearing down.
  // In cooperative async mode an unserviced window is *discarded* — the
  // captured epoch never commits, exactly as if the process had crashed
  // after capture (the crash harness relies on this; call wait_committed()
  // first for a clean shutdown).
  ~DefaultContainer() override;

  uint8_t* data() override { return layout_.main_base(); }
  void annotate(const void* addr, size_t len) override;
  void checkpoint() override;
  void wait_committed() override;
  bool checkpoint_pending() const override {
    for (const auto& w : windows_) {
      if (w->open.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

 private:
  friend class AsyncCommitPipeline;

  // Copy-on-write of main segment `seg` (Figure 6, copy_on_write).
  void copy_on_write(uint64_t seg);

  // Batched CoW of all dirty segments inside the checkpoint (Section 3.4.2,
  // last paragraph): one fence for all copies, one for all state flips.
  void eager_cow(const std::vector<uint64_t>& segs);

  // Async mode (see async_commit.h): the stop-the-world capture phase and
  // the pipeline stages it leaves behind.
  void checkpoint_async();
  // Write-hook cooperation: first post-capture write to a captured segment
  // flushes its blocks and snapshots its capture-epoch image into window
  // `w`. Called with the segment's lock held.
  void steal_captured(AsyncWindow& w, uint64_t seg);
  // Runs window `epoch`'s pipeline stages (sharded flush, shard-local
  // commit, FIFO join, commit, finalize); work-shared by `participants`
  // callers (each calls exactly once per window).
  void async_service_window_epoch(uint64_t epoch, uint32_t participants);
  // Oldest epoch with an open window, or 0 if none. Cooperative-mode
  // scheduling helper; single-threaded use only.
  uint64_t async_oldest_open_epoch() const;
  // Post-commit: rebuild a stolen segment's backup from window `w`'s
  // capture-time image and flip it to SS_Backup — in the committed replica
  // and in any newer open window's staged replica that has not re-captured
  // the segment. Segment lock held; windows_mu_ held.
  void finalize_stolen(AsyncWindow& w, uint64_t seg,
                       const std::vector<uint64_t>& blocks);
  // Ring slot of epoch e (epochs start at 1, slot 0 unused until wrap).
  AsyncWindow& window_of(uint64_t epoch) {
    return *windows_[epoch % windows_.size()];
  }

  // Shared checkpoint-phase state distributed over collective threads.
  std::vector<uint64_t> ckpt_segs_;
  std::atomic<size_t> ckpt_cursor_{0};
  std::atomic<uint64_t> ckpt_flushed_bytes_{0};
  bool ckpt_use_wbinvd_ = false;
  bool ckpt_skip_ = false;

  // Multi-window async state. windows_ is a ring of max_inflight_epochs
  // slots; capture of epoch E reuses slot E % K after backpressure has
  // drained its previous occupant. windows_mu_ orders capture's staging
  // memcpy against finalize's flip propagation (it is INNER to the
  // per-segment tracker locks: never take a segment lock while holding it).
  std::vector<std::unique_ptr<AsyncWindow>> windows_;
  std::mutex windows_mu_;
  uint64_t last_captured_epoch_ = 0;
  // Per-shard durable-progress mirrors and persist locks ("shard.commit").
  // The mirror only ever rises; the lock serializes the read-check-persist
  // so a late finisher of an old window cannot clobber a newer record.
  std::unique_ptr<std::atomic<uint64_t>[]> shard_progress_;
  std::vector<std::unique_ptr<SpinLock>> shard_locks_;
  // Declared last: destroyed first, so workers stop before the state they
  // touch goes away.
  std::unique_ptr<AsyncCommitPipeline> pipeline_;
};

// Section 3.5: working state in DRAM, parity-alternating differential
// replication at checkpoint time.
class BufferedContainer final : public Container {
 public:
  BufferedContainer(NvmDevice* dev, std::unique_ptr<NvmDevice> owned,
                    const CrpmOptions& opt,
                    uint64_t target_epoch = kLatestEpoch);

  uint8_t* data() override { return buf_; }
  void annotate(const void* addr, size_t len) override;
  void checkpoint() override;

  uint64_t dram_bytes() const override;
  bool retains_previous_epoch() const override { return true; }

 private:
  // True when the checkpoint of epoch `e` targets the main region.
  static bool targets_main(uint64_t e) { return (e & 1) == 0; }

  void load_dram_from_main();

  std::vector<uint8_t> buf_storage_;
  uint8_t* buf_ = nullptr;

  // Two generations of dirty block bitmaps: blocks modified during the
  // current epoch and during the previous epoch ("modified during epochs
  // e-1 or e", Section 3.5).
  AtomicBitmap cur_dirty_;
  AtomicBitmap prev_dirty_;

  // Checkpoint-phase shared state.
  std::vector<uint64_t> ckpt_segs_;
  std::vector<uint8_t> ckpt_full_copy_;  // per-entry: fresh pairing => full
  std::atomic<size_t> ckpt_cursor_{0};
  bool ckpt_skip_ = false;
};

}  // namespace crpm
