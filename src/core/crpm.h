// libcrpm public C-style API (Section 3.2, Figure 3).
//
// Mirrors the calls the paper's applications use:
//
//   crpm_t* c = crpm_open("lulesh.crpm", &opts);
//   if (crpm_is_fresh(c)) {
//     Domain* d = (Domain*)crpm_malloc(c, sizeof(Domain));
//     crpm_set_root(c, 0, d);
//   }
//   Domain* d = (Domain*)crpm_get_root(c, 0);
//   ... compute, calling crpm_annotate(...) before stores ...
//   crpm_checkpoint(c);   // collective across registered threads
//
// This is a thin veneer over crpm::Container + crpm::Heap; C++ callers can
// use those directly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/options.h"

namespace crpm {
class Container;
class Heap;
}  // namespace crpm

extern "C" {

struct crpm_t;  // opaque handle: one open container + its heap

// Opens (recovering) or creates the container file at `path`. `opt` may be
// null for defaults.
crpm_t* crpm_open(const char* path, const crpm::CrpmOptions* opt);

// Closes the container. In-flight (uncheckpointed) modifications are
// discarded on the next open, exactly as a crash would discard them.
void crpm_close(crpm_t* c);

// True if crpm_open created a brand-new container (no recovered state).
int crpm_is_fresh(const crpm_t* c);

// Collective checkpoint (every thread declared in options.thread_count
// must call; blocks until all arrive). On return the pre-call working
// state is the new durable checkpoint state.
void crpm_checkpoint(crpm_t* c);

// Program-state allocation.
void* crpm_malloc(crpm_t* c, size_t size);
void crpm_free(crpm_t* c, void* p, size_t size);

// Root pointer array (kNumRoots slots). Epoch-consistent: a root update
// commits at the next crpm_checkpoint() together with the object it
// references, and rolls back with it on a crash.
void crpm_set_root(crpm_t* c, uint32_t slot, const void* p);
void* crpm_get_root(crpm_t* c, uint32_t slot);

// The instrumentation hook (what the compiler pass would insert): mark
// [addr, addr+len) about to be modified. Safe to call on any address;
// non-container addresses are ignored.
void crpm_annotate_range(const void* addr, size_t len);

// Introspection.
uint64_t crpm_committed_epoch(const crpm_t* c);
void* crpm_base(crpm_t* c);
size_t crpm_capacity(const crpm_t* c);

// Access to the underlying C++ objects (for the rest of this library).
crpm::Container* crpm_container(crpm_t* c);
crpm::Heap* crpm_heap(crpm_t* c);

}  // extern "C"
