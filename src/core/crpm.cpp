#include "core/crpm.h"

#include <memory>

#include "core/container.h"
#include "core/heap.h"
#include "core/registry.h"

struct crpm_t {
  std::unique_ptr<crpm::Container> ctr;
  std::unique_ptr<crpm::Heap> heap;
};

extern "C" {

crpm_t* crpm_open(const char* path, const crpm::CrpmOptions* opt) {
  crpm::CrpmOptions o = opt != nullptr ? *opt : crpm::CrpmOptions{};
  auto* h = new crpm_t;
  h->ctr = crpm::Container::open_file(path, o);
  h->heap = std::make_unique<crpm::Heap>(*h->ctr);
  crpm::register_container(h->ctr.get());
  return h;
}

void crpm_close(crpm_t* c) {
  if (c == nullptr) return;
  crpm::deregister_container(c->ctr.get());
  delete c;
}

int crpm_is_fresh(const crpm_t* c) { return c->ctr->was_fresh() ? 1 : 0; }

void crpm_checkpoint(crpm_t* c) { c->ctr->checkpoint(); }

void* crpm_malloc(crpm_t* c, size_t size) { return c->heap->allocate(size); }

void crpm_free(crpm_t* c, void* p, size_t size) {
  c->heap->deallocate(p, size);
}

void crpm_set_root(crpm_t* c, uint32_t slot, const void* p) {
  c->ctr->set_root(slot, p == nullptr ? 0 : c->ctr->to_offset(p));
}

void* crpm_get_root(crpm_t* c, uint32_t slot) {
  uint64_t off = c->ctr->get_root(slot);
  return off == 0 ? nullptr : c->ctr->from_offset(off);
}

void crpm_annotate_range(const void* addr, size_t len) {
  crpm::crpm_annotate(addr, len);
}

uint64_t crpm_committed_epoch(const crpm_t* c) {
  return c->ctr->committed_epoch();
}

void* crpm_base(crpm_t* c) { return c->ctr->data(); }

size_t crpm_capacity(const crpm_t* c) {
  return const_cast<crpm_t*>(c)->ctr->capacity();
}

crpm::Container* crpm_container(crpm_t* c) { return c->ctr.get(); }
crpm::Heap* crpm_heap(crpm_t* c) { return c->heap.get(); }

}  // extern "C"
