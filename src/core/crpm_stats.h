// Runtime statistics for one container: checkpoint sizes (Table 1a),
// copy-on-write activity, and time spent in tracing vs. checkpointing
// (Figure 1 breakdown).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace crpm {

struct CrpmStatsSnapshot {
  uint64_t epochs = 0;
  uint64_t cow_count = 0;           // segment copy-on-writes performed
  uint64_t cow_full_copies = 0;     // CoWs that copied the whole segment
  uint64_t cow_blocks_copied = 0;   // blocks moved by differential CoW
  uint64_t checkpoint_bytes = 0;    // bytes copied/flushed to build ckpts
  uint64_t eager_cow_segments = 0;  // segments eagerly CoW'd at checkpoint
  uint64_t trace_ns = 0;            // time in CoW slow path (memory trace)
  uint64_t checkpoint_ns = 0;       // time inside crpm_checkpoint
  uint64_t backup_steals = 0;       // backup segments recycled

  // Async-checkpoint observability (CrpmOptions::async_checkpoint):
  // capture-phase time, write-hook steals, the in-flight-epoch high-water
  // mark, background flush traffic, and capture-phase time spent blocked
  // on the previous epoch's commit (backpressure).
  uint64_t async_captures = 0;        // capture phases executed
  uint64_t async_capture_ns = 0;      // stop-the-world capture time
  uint64_t async_steal_copies = 0;    // segment copies stolen by the hook
  uint64_t async_inflight_hwm = 0;    // max captured-uncommitted epochs
  uint64_t async_flush_bytes = 0;     // bytes flushed by the pipeline
  uint64_t async_flush_crit_ns = 0;   // flush critical path: per window,
                                      // the max per-shard flush CPU time
  uint64_t async_backpressure_ns = 0; // capture time waiting for a commit

  // Snapshot-archive observability (src/snapshot), populated when an
  // ArchiveWriter is attached to the container.
  uint64_t archive_epochs = 0;        // epoch frames durably appended
  uint64_t archive_bytes = 0;         // archive bytes appended
  uint64_t archive_queue_hwm = 0;     // writer queue high-water mark
  uint64_t archive_stall_ns = 0;      // commit-path time blocked on the queue
  uint64_t archive_capture_ns = 0;    // commit-path time staging deltas
  uint64_t archive_compactions = 0;   // chain folds into a base snapshot

  // Peer replication observability (src/repl), populated when a ReplNode
  // is attached to the container's archive writer.
  uint64_t repl_frames_sent = 0;    // datagrams sent (first sends + retries)
  uint64_t repl_bytes_sent = 0;
  uint64_t repl_frames_acked = 0;   // (frame, partner) pairs acked durable
  uint64_t repl_retries = 0;        // retransmissions after ack timeout
  uint64_t repl_frames_dropped = 0; // (frame, partner) pairs given up
  uint64_t repl_frames_stored = 0;  // partner frames persisted locally
  uint64_t repl_stall_ns = 0;       // writer-thread time on a full queue
  // Where the last recovery got its state from.
  enum RecoverySource : uint64_t {
    kRecoveryNone = 0,
    kRecoveryLocal = 1,
    kRecoveryPeer = 2
  };
  uint64_t recovery_source = kRecoveryNone;

  // Online-scrubber observability (src/scrub): background verification
  // passes over container metadata, archive frame CRCs, and cold-tier
  // bases. scrub_errors counts damage findings (also quarantined on disk);
  // scrub_skipped counts checks abandoned because the container committed
  // an epoch mid-read (retried next pass).
  uint64_t scrub_passes = 0;
  uint64_t scrub_frames_checked = 0;
  uint64_t scrub_bytes_checked = 0;
  uint64_t scrub_errors = 0;
  uint64_t scrub_skipped = 0;
  uint64_t scrub_ns = 0;  // thread-CPU time inside scrub passes

  CrpmStatsSnapshot operator-(const CrpmStatsSnapshot& rhs) const;
  std::string to_string() const;
};

class CrpmStats {
 public:
  void add_epoch() { epochs_.fetch_add(1, std::memory_order_relaxed); }
  void add_cow(bool full_copy, uint64_t blocks, uint64_t bytes) {
    cow_count_.fetch_add(1, std::memory_order_relaxed);
    if (full_copy) cow_full_copies_.fetch_add(1, std::memory_order_relaxed);
    cow_blocks_copied_.fetch_add(blocks, std::memory_order_relaxed);
    checkpoint_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_checkpoint_bytes(uint64_t bytes) {
    checkpoint_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_eager_cow(uint64_t segments) {
    eager_cow_segments_.fetch_add(segments, std::memory_order_relaxed);
  }
  void add_trace_ns(uint64_t ns) {
    trace_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_checkpoint_ns(uint64_t ns) {
    checkpoint_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_backup_steal() {
    backup_steals_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_async_capture(uint64_t ns) {
    async_captures_.fetch_add(1, std::memory_order_relaxed);
    async_capture_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_async_steal() {
    async_steal_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_async_inflight(uint64_t inflight) {
    uint64_t prev = async_inflight_hwm_.load(std::memory_order_relaxed);
    while (inflight > prev &&
           !async_inflight_hwm_.compare_exchange_weak(
               prev, inflight, std::memory_order_relaxed)) {
    }
  }
  void add_async_flush_bytes(uint64_t bytes) {
    async_flush_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_async_flush_crit_ns(uint64_t ns) {
    async_flush_crit_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_async_backpressure_ns(uint64_t ns) {
    async_backpressure_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_archive_epoch(uint64_t bytes) {
    archive_epochs_.fetch_add(1, std::memory_order_relaxed);
    archive_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_archive_queue_depth(uint64_t depth) {
    uint64_t prev = archive_queue_hwm_.load(std::memory_order_relaxed);
    while (depth > prev &&
           !archive_queue_hwm_.compare_exchange_weak(
               prev, depth, std::memory_order_relaxed)) {
    }
  }
  void add_archive_stall_ns(uint64_t ns) {
    archive_stall_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_archive_capture_ns(uint64_t ns) {
    archive_capture_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_archive_compaction() {
    archive_compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_repl_frame_sent(uint64_t bytes) {
    repl_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    repl_bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_repl_frame_acked() {
    repl_frames_acked_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_repl_retry() {
    repl_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_repl_frame_dropped() {
    repl_frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_repl_frame_stored() {
    repl_frames_stored_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_repl_stall_ns(uint64_t ns) {
    repl_stall_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void note_recovery_source(uint64_t src) {
    recovery_source_.store(src, std::memory_order_relaxed);
  }
  void add_scrub_pass(uint64_t frames, uint64_t bytes, uint64_t errors,
                      uint64_t skipped, uint64_t ns) {
    scrub_passes_.fetch_add(1, std::memory_order_relaxed);
    scrub_frames_checked_.fetch_add(frames, std::memory_order_relaxed);
    scrub_bytes_checked_.fetch_add(bytes, std::memory_order_relaxed);
    scrub_errors_.fetch_add(errors, std::memory_order_relaxed);
    scrub_skipped_.fetch_add(skipped, std::memory_order_relaxed);
    scrub_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  CrpmStatsSnapshot snapshot() const;

 private:
  std::atomic<uint64_t> epochs_{0};
  std::atomic<uint64_t> cow_count_{0};
  std::atomic<uint64_t> cow_full_copies_{0};
  std::atomic<uint64_t> cow_blocks_copied_{0};
  std::atomic<uint64_t> checkpoint_bytes_{0};
  std::atomic<uint64_t> eager_cow_segments_{0};
  std::atomic<uint64_t> trace_ns_{0};
  std::atomic<uint64_t> checkpoint_ns_{0};
  std::atomic<uint64_t> backup_steals_{0};
  std::atomic<uint64_t> async_captures_{0};
  std::atomic<uint64_t> async_capture_ns_{0};
  std::atomic<uint64_t> async_steal_copies_{0};
  std::atomic<uint64_t> async_inflight_hwm_{0};
  std::atomic<uint64_t> async_flush_bytes_{0};
  std::atomic<uint64_t> async_flush_crit_ns_{0};
  std::atomic<uint64_t> async_backpressure_ns_{0};
  std::atomic<uint64_t> archive_epochs_{0};
  std::atomic<uint64_t> archive_bytes_{0};
  std::atomic<uint64_t> archive_queue_hwm_{0};
  std::atomic<uint64_t> archive_stall_ns_{0};
  std::atomic<uint64_t> archive_capture_ns_{0};
  std::atomic<uint64_t> archive_compactions_{0};
  std::atomic<uint64_t> repl_frames_sent_{0};
  std::atomic<uint64_t> repl_bytes_sent_{0};
  std::atomic<uint64_t> repl_frames_acked_{0};
  std::atomic<uint64_t> repl_retries_{0};
  std::atomic<uint64_t> repl_frames_dropped_{0};
  std::atomic<uint64_t> repl_frames_stored_{0};
  std::atomic<uint64_t> repl_stall_ns_{0};
  std::atomic<uint64_t> recovery_source_{0};
  std::atomic<uint64_t> scrub_passes_{0};
  std::atomic<uint64_t> scrub_frames_checked_{0};
  std::atomic<uint64_t> scrub_bytes_checked_{0};
  std::atomic<uint64_t> scrub_errors_{0};
  std::atomic<uint64_t> scrub_skipped_{0};
  std::atomic<uint64_t> scrub_ns_{0};
};

}  // namespace crpm
