// Recoverable memory allocator for program state objects (Section 4).
//
// The heap's bookkeeping (bump pointer, segregated free lists) lives inside
// the container's working state and is annotated like any other program
// state, so it is checkpointed and rolled back with the data it manages —
// the paper instruments the allocator when building libcrpm for the same
// reason. No internal failure atomicity is needed: a crash mid-allocation
// rolls the whole heap back to the last checkpoint.
//
// Free objects store the offset of the next free object in their first
// 8 bytes. All references are container offsets, so the container file can
// be remapped at a different virtual address across restarts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/container.h"
#include "util/sync.h"

namespace crpm {

class Heap {
 public:
  // Attaches to `ctr`'s working state. On a fresh container the heap
  // formats itself (callers should checkpoint before relying on it
  // surviving a crash); on an existing container it validates the
  // recovered bookkeeping.
  explicit Heap(Container& ctr);

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Allocates `size` bytes of program state; never returns nullptr
  // (aborts when the container is full). Thread-safe.
  void* allocate(size_t size);
  void deallocate(void* p, size_t size);

  uint64_t offset_of(const void* p) { return ctr_.to_offset(p); }
  void* pointer_to(uint64_t off) { return ctr_.from_offset(off); }

  Container& container() { return ctr_; }

  // Bytes handed out minus bytes freed (free-list contents count as used
  // from the bump allocator's perspective).
  uint64_t bytes_in_use() const;
  uint64_t bytes_total() const;

  // Number of size classes (16 B .. 1 GiB).
  static constexpr uint32_t kNumClasses = 16 + 27;

 private:
  struct HeapHeader;

  HeapHeader* header();
  const HeapHeader* header() const;

  // Rounded allocation size and its class index; sizes above the largest
  // class abort.
  static uint32_t class_of(size_t size, size_t* rounded);

  void format();

  Container& ctr_;
  SpinLock lock_;
};

}  // namespace crpm
