// Compacted persistent memory layout (Section 3.3, Figure 4).
//
// Device byte map:
//
//   [ MetaHeader                      ]  4 KB, holds committed_epoch
//   [ seg_state[R][nr_main]           ]  1 B per main segment; R =
//                                        max_inflight_epochs + 1 replicas
//                                        (2 = classic double buffering);
//                                        epoch E commits copy E mod R
//   [ backup_to_main[nr_backup]       ]  4 B per backup segment
//   [ roots[R][kNumRoots]             ]  8 B each, replicated like
//                                        seg_state: committed with epochs
//   [ shard_epochs[S]                 ]  one cache line per commit shard:
//                                        durable per-shard flush progress
//                                        for the coordinated commit
//   [ padding to segment alignment    ]
//   [ main region:   nr_main  * seg   ]  application-visible working state
//   [ backup region: nr_backup * seg  ]  differential checkpoint data
//
// Geometry is pure index math (segment/block <-> offset); Layout binds a
// geometry to a device and exposes typed views of the metadata.
#pragma once

#include <cstdint>

#include "core/options.h"
#include "nvm/device.h"

namespace crpm {

inline constexpr uint32_t kNumRoots = 16;
inline constexpr uint32_t kNoPair = 0xFFFFFFFFu;
inline constexpr uint64_t kMetaMagic = 0x6372706d2d763031ull;  // "crpm-v01"
inline constexpr uint32_t kMetaVersion = 2;  // v2: replicated metadata +
                                             // per-shard progress words

// Each shard's persistent progress word sits alone in its own cache line so
// one shard's persist never drags another shard's staged value along.
inline constexpr uint64_t kShardEpochStride = 64;

enum SegState : uint8_t {
  kSegInitial = 0,  // segment holds no committed program state
  kSegMain = 1,     // main segment holds the checkpoint state
  kSegBackup = 2,   // paired backup segment holds the checkpoint state
};

// On-media header. All fields little-endian native; the header occupies the
// first cache lines of the device and committed_epoch sits alone in its own
// cache line so its persist never drags unrelated bytes along.
struct MetaHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t flags;  // bit 0: buffered container
  uint64_t segment_size;
  uint64_t block_size;
  uint64_t nr_main_segs;
  uint64_t nr_backup_segs;
  uint64_t main_region_offset;
  uint64_t backup_region_offset;
  uint64_t seg_state_offset;       // seg_state[0]; [1..R-1] follow
  uint64_t backup_to_main_offset;
  uint64_t roots_offset;
  uint32_t meta_replicas;          // seg_state/roots copies (inflight + 1)
  uint32_t shard_count;            // commit shards (progress words)
  uint64_t shard_epochs_offset;
  uint8_t initialized;  // set (and persisted) after initial format completes
  uint8_t pad0[7];
  // --- own cache line: the atomic commit point (Figure 6, line 41) ---
  alignas(64) uint64_t committed_epoch;
};
static_assert(sizeof(MetaHeader) <= 4096);
static_assert(offsetof(MetaHeader, committed_epoch) % 64 == 0);

// Segment/block arithmetic for a given options set.
class Geometry {
 public:
  Geometry() = default;
  explicit Geometry(const CrpmOptions& opt);

  uint64_t segment_size() const { return segment_size_; }
  uint64_t block_size() const { return block_size_; }
  uint64_t nr_main_segs() const { return nr_main_segs_; }
  uint64_t nr_backup_segs() const { return nr_backup_segs_; }
  uint64_t blocks_per_segment() const { return blocks_per_segment_; }
  uint64_t nr_blocks() const { return nr_main_segs_ * blocks_per_segment_; }
  uint64_t main_region_size() const { return nr_main_segs_ * segment_size_; }
  uint64_t backup_region_size() const {
    return nr_backup_segs_ * segment_size_;
  }

  uint64_t segment_of_offset(uint64_t main_off) const {
    return main_off >> segment_shift_;
  }
  uint64_t block_of_offset(uint64_t main_off) const {
    return main_off >> block_shift_;
  }
  uint64_t first_block_of_segment(uint64_t seg) const {
    return seg * blocks_per_segment_;
  }
  uint64_t segment_of_block(uint64_t block) const {
    return block / blocks_per_segment_;
  }
  uint64_t block_offset(uint64_t block) const {  // offset within main region
    return block << block_shift_;
  }
  uint64_t segment_offset(uint64_t seg) const {
    return seg << segment_shift_;
  }

  // Total device bytes needed (metadata + both regions).
  uint64_t device_size() const { return device_size_; }
  uint64_t main_region_offset() const { return main_region_offset_; }
  uint64_t backup_region_offset() const { return backup_region_offset_; }
  uint64_t seg_state_offset() const { return seg_state_offset_; }
  uint64_t backup_to_main_offset() const { return backup_to_main_offset_; }
  uint64_t roots_offset() const { return roots_offset_; }
  uint64_t shard_epochs_offset() const { return shard_epochs_offset_; }
  // Metadata replicas: one per tolerated in-flight epoch, plus the
  // committed copy. active copy of epoch E = E % meta_replicas().
  uint32_t meta_replicas() const { return meta_replicas_; }
  uint32_t shard_count() const { return shard_count_; }

  // In-NVM metadata footprint in bytes, excluding the alignment padding
  // before the main region (reported in Section 5.6).
  uint64_t metadata_size() const {
    return shard_epochs_offset_ + shard_count_ * kShardEpochStride;
  }

 private:
  uint64_t segment_size_ = 0;
  uint64_t block_size_ = 0;
  uint64_t nr_main_segs_ = 0;
  uint64_t nr_backup_segs_ = 0;
  uint64_t blocks_per_segment_ = 0;
  uint32_t segment_shift_ = 0;
  uint32_t block_shift_ = 0;
  uint32_t meta_replicas_ = 2;
  uint32_t shard_count_ = 1;
  uint64_t seg_state_offset_ = 0;
  uint64_t backup_to_main_offset_ = 0;
  uint64_t roots_offset_ = 0;
  uint64_t shard_epochs_offset_ = 0;
  uint64_t main_region_offset_ = 0;
  uint64_t backup_region_offset_ = 0;
  uint64_t device_size_ = 0;
};

// Typed accessors over the device's metadata and regions.
class Layout {
 public:
  Layout() = default;
  Layout(NvmDevice* dev, const Geometry& geo) : dev_(dev), geo_(geo) {}

  MetaHeader* header() const {
    return reinterpret_cast<MetaHeader*>(dev_->base());
  }
  uint8_t* seg_state(int which) const {
    return dev_->base() + geo_.seg_state_offset() +
           uint64_t(which) * geo_.nr_main_segs();
  }
  uint32_t* backup_to_main() const {
    return reinterpret_cast<uint32_t*>(dev_->base() +
                                       geo_.backup_to_main_offset());
  }
  uint64_t* roots(int which) const {
    return reinterpret_cast<uint64_t*>(dev_->base() + geo_.roots_offset()) +
           uint64_t(which) * kNumRoots;
  }
  // Per-shard durable flush-progress word (multi-window commit).
  uint64_t* shard_epoch_word(uint32_t shard) const {
    return reinterpret_cast<uint64_t*>(dev_->base() +
                                       geo_.shard_epochs_offset() +
                                       uint64_t(shard) * kShardEpochStride);
  }
  uint8_t* main_base() const {
    return dev_->base() + geo_.main_region_offset();
  }
  uint8_t* backup_base() const {
    return dev_->base() + geo_.backup_region_offset();
  }
  uint8_t* main_segment(uint64_t seg) const {
    return main_base() + geo_.segment_offset(seg);
  }
  uint8_t* backup_segment(uint64_t b) const {
    return backup_base() + geo_.segment_offset(b);
  }
  uint8_t* block_addr(uint64_t block) const {
    return main_base() + geo_.block_offset(block);
  }

  const Geometry& geometry() const { return geo_; }
  NvmDevice* device() const { return dev_; }

  // Formats a fresh device: writes the header, clears metadata arrays, and
  // persists everything. Idempotent only on pristine devices.
  void format(const CrpmOptions& opt);

  // Validates an existing header against `opt`; aborts on mismatch.
  void check_header(const CrpmOptions& opt) const;

 private:
  NvmDevice* dev_ = nullptr;
  Geometry geo_;
};

}  // namespace crpm
