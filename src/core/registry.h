// Process-global address-range registry.
//
// The paper's compiler pass emits calls to a global hook_routine(addr, len)
// before stores; at runtime the hook must find which open container owns
// the address ("do not proceed if address is invalid", Figure 6 line 21).
// Containers register their working-state range on open; crpm_annotate()
// resolves addresses through this registry. The crpm::p<T> wrapper and the
// C API both route through it.
#pragma once

#include <cstddef>

#include "core/container.h"

namespace crpm {

// Registers/deregisters a container's [data, data+capacity) range.
// Idempotent deregistration. Thread-safe.
void register_container(Container* ctr);
void deregister_container(Container* ctr);

// Returns the container owning `addr`, or nullptr.
Container* find_container(const void* addr);

// The global instrumentation hook (the paper's hook_routine). A no-op when
// the address belongs to no registered container, so instrumented code can
// also run on transient DRAM objects.
void crpm_annotate(const void* addr, size_t len);

}  // namespace crpm
