#include "core/container.h"

#include <cstring>
#include <ctime>
#include <mutex>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace crpm {

// ---------------------------------------------------------------------------
// Container (shared machinery)
// ---------------------------------------------------------------------------

Container::Container(NvmDevice* dev, std::unique_ptr<NvmDevice> owned,
                     const CrpmOptions& opt, uint64_t target_epoch)
    : dev_(dev), owned_dev_(std::move(owned)), opt_(opt.validated()),
      geo_(opt_), layout_(dev_, geo_), target_epoch_(target_epoch) {
  CRPM_CHECK(dev_->size() >= geo_.device_size(),
             "device too small: have %zu need %llu", dev_->size(),
             (unsigned long long)geo_.device_size());
  tracker_ = std::make_unique<DirtyTracker>(geo_);
  barrier_ = std::make_unique<SpinBarrier>(opt_.thread_count);
  main_to_backup_.assign(geo_.nr_main_segs(), kNoPair);
}

uint64_t Container::required_device_size(const CrpmOptions& opt) {
  return Geometry(opt.validated()).device_size();
}

void Container::open_or_format() {
  MetaHeader* h = layout_.header();
  if (h->magic != kMetaMagic || h->initialized == 0) {
    PersistSiteScope site("format");
    layout_.format(opt_);
    dram_committed_.store(0, std::memory_order_release);
    fresh_ = true;
  } else {
    layout_.check_header(opt_);
    fresh_ = false;
    // Epoch selection (Section 3.6) must precede region sync: the backup
    // refresh below overwrites the retained previous-epoch data.
    if (target_epoch_ != kLatestEpoch &&
        target_epoch_ != h->committed_epoch) {
      CRPM_CHECK(target_epoch_ + 1 == h->committed_epoch,
                 "cannot recover epoch %llu: container holds %llu and one "
                 "epoch of history at most",
                 (unsigned long long)target_epoch_,
                 (unsigned long long)h->committed_epoch);
      CRPM_CHECK(retains_previous_epoch(),
                 "previous epoch not retained: use buffered mode or set "
                 "eager_cow_segments = 0 for coordinated checkpoints");
      h->committed_epoch -= 1;
      PersistSiteScope site("recovery.rollback");
      dev_->persist(&h->committed_epoch, sizeof(uint64_t));
    }
    // Seed the DRAM mirror before anything reads active_index().
    dram_committed_.store(h->committed_epoch, std::memory_order_release);
    Stopwatch sw;
    region_sync();
    recovery_sync_ns_ = sw.elapsed_ns();
  }
  rebuild_backup_index();
  // Load the committed root array into the working copy.
  const uint64_t* committed_roots = layout_.roots(active_index());
  std::copy(committed_roots, committed_roots + kNumRoots,
            roots_work_.begin());
  roots_dirty_ = false;
}

void Container::renumber_epoch(uint64_t epoch) {
  MetaHeader* h = layout_.header();
  CRPM_CHECK(epoch >= h->committed_epoch,
             "renumber_epoch(%llu) would move epoch %llu backwards",
             (unsigned long long)epoch,
             (unsigned long long)h->committed_epoch);
  CRPM_CHECK((epoch - h->committed_epoch) % geo_.meta_replicas() == 0,
             "renumber_epoch(%llu) changes the metadata-replica residue of "
             "epoch %llu (replicas=%u)",
             (unsigned long long)epoch,
             (unsigned long long)h->committed_epoch, geo_.meta_replicas());
  if (epoch == h->committed_epoch) return;
  h->committed_epoch = epoch;
  PersistSiteScope site("commit.renumber");
  dev_->persist(&h->committed_epoch, sizeof(uint64_t));
  dram_committed_.store(epoch, std::memory_order_release);
}

uint64_t Container::peek_committed_epoch(NvmDevice* dev) {
  if (dev->size() < sizeof(MetaHeader)) return kLatestEpoch;
  const auto* h = reinterpret_cast<const MetaHeader*>(dev->base());
  if (h->magic != kMetaMagic || h->initialized == 0) return kLatestEpoch;
  return h->committed_epoch;
}

void Container::rebuild_backup_index() {
  main_to_backup_.assign(geo_.nr_main_segs(), kNoPair);
  free_backups_.clear();
  const uint32_t* b2m = layout_.backup_to_main();
  for (uint64_t b = 0; b < geo_.nr_backup_segs(); ++b) {
    uint32_t m = b2m[b];
    if (m == kNoPair) {
      free_backups_.push_back(static_cast<uint32_t>(b));
      continue;
    }
    CRPM_CHECK(m < geo_.nr_main_segs(), "corrupt pairing: backup %llu -> %u",
               (unsigned long long)b, m);
    CRPM_CHECK(main_to_backup_[m] == kNoPair,
               "duplicate pairing for main segment %u", m);
    main_to_backup_[m] = static_cast<uint32_t>(b);
  }
  steal_cursor_ = 0;
}

void Container::region_sync() {
  PersistSiteScope site("recovery.sync");
  // Figure 6, crpm_recovery. Full-segment copies: the DRAM dirty bitmap did
  // not survive the crash, so the block-level diff is unknown.
  const uint32_t* b2m = layout_.backup_to_main();
  const uint8_t* state = layout_.seg_state(active_index());
  uint64_t copies = 0;

  // SS_Initial segments hold no committed program state — their logical
  // checkpoint content is the zeroed initial image. A crash during the
  // first epoch that touched such a segment can leave torn uncommitted
  // stores on media (recovery's pairing loop below never visits them), so
  // restore the zeros explicitly. memcmp first: almost all of these
  // segments are still pristine.
  for (uint64_t m = 0; m < geo_.nr_main_segs(); ++m) {
    if (state[m] != kSegInitial) continue;
    uint8_t* seg = layout_.main_segment(m);
    uint64_t sz = geo_.segment_size();
    bool pristine = seg[0] == 0 && std::memcmp(seg, seg + 1, sz - 1) == 0;
    if (!pristine) {
      std::memset(seg, 0, sz);
      dev_->flush(seg, sz);
      ++copies;
    }
  }
  for (uint64_t b = 0; b < geo_.nr_backup_segs(); ++b) {
    uint32_t m = b2m[b];
    if (m == kNoPair) continue;
    switch (state[m]) {
      case kSegMain:
        // Main holds the checkpoint; refresh the paired backup so that the
        // block-level differential invariant (backup == main-at-checkpoint)
        // holds again.
        dev_->nt_copy(layout_.backup_segment(b), layout_.main_segment(m),
                      geo_.segment_size());
        ++copies;
        break;
      case kSegBackup:
        // Backup holds the checkpoint; restore the working state.
        dev_->nt_copy(layout_.main_segment(m), layout_.backup_segment(b),
                      geo_.segment_size());
        ++copies;
        break;
      case kSegInitial: {
        // The pairing was persisted during an epoch that never committed
        // (its segment still holds no checkpoint state), so the backup
        // segment contains garbage. Drop the pairing: keeping it would
        // make a later differential copy treat the garbage as a valid
        // base image.
        uint32_t* slot = layout_.backup_to_main() + b;
        *slot = kNoPair;
        dev_->flush(slot, sizeof(uint32_t));
        ++copies;
        break;
      }
      default:
        CRPM_CHECK(false, "corrupt segment state %u for segment %u",
                   state[m], m);
    }
  }
  if (copies != 0) dev_->fence();
}

uint32_t Container::alloc_backup(uint64_t main_seg) {
  std::lock_guard<SpinLock> lk(alloc_lock_);
  uint32_t b = kNoPair;
  if (!free_backups_.empty()) {
    b = free_backups_.back();
    free_backups_.pop_back();
  } else {
    // Recycle: "a backup segment can be allocated if it is not used for
    // saving the checkpoint state" (Section 3.3) — i.e. its paired main
    // segment's state is SS_Main.
    uint32_t* b2m = layout_.backup_to_main();
    const uint8_t* state = layout_.seg_state(active_index());
    uint64_t n = geo_.nr_backup_segs();
    for (uint64_t probe = 0; probe < n; ++probe) {
      uint32_t cand = static_cast<uint32_t>((steal_cursor_ + probe) % n);
      uint32_t victim = b2m[cand];
      if (victim == kNoPair || victim == main_seg) continue;
      if (state[victim] != kSegMain) continue;  // backup saves a checkpoint
      SpinLock& vlock = tracker_->segment_lock(victim);
      if (!vlock.try_lock()) continue;  // victim mid-CoW; skip
      // Re-check under the victim's lock.
      if (state[victim] == kSegMain && b2m[cand] == victim) {
        main_to_backup_[victim] = kNoPair;
        b = cand;
        steal_cursor_ = (cand + 1) % n;
        stats_.add_backup_steal();
        vlock.unlock();
        break;
      }
      vlock.unlock();
    }
    CRPM_CHECK(b != kNoPair,
               "backup region exhausted: more than %llu segments dirty in "
               "one epoch; increase backup_ratio",
               (unsigned long long)geo_.nr_backup_segs());
  }
  uint32_t* b2m = layout_.backup_to_main();
  b2m[b] = static_cast<uint32_t>(main_seg);
  PersistSiteScope site("cow.pair");
  dev_->flush(&b2m[b], sizeof(uint32_t));  // fenced by the caller's fence
  main_to_backup_[main_seg] = b;
  return b;
}

void Container::set_root(uint32_t slot, uint64_t off) {
  CRPM_CHECK(slot < kNumRoots, "root slot %u out of range", slot);
  roots_work_[slot] = off;
  roots_dirty_ = true;
}

uint64_t Container::get_root(uint32_t slot) const {
  CRPM_CHECK(slot < kNumRoots, "root slot %u out of range", slot);
  return roots_work_[slot];
}

void Container::stage_roots_for_commit() {
  // Always carry the working roots into the next epoch's array (it is
  // meta_replicas() epochs stale), exactly like the seg_state copy-forward.
  uint64_t* dst =
      layout_.roots((active_index() + 1) % static_cast<int>(geo_.meta_replicas()));
  std::copy(roots_work_.begin(), roots_work_.end(), dst);
  dev_->flush(dst, 8 * kNumRoots);
}

void Container::notify_epoch_sink(uint64_t epoch, const uint8_t* data,
                                  std::vector<uint64_t> blocks) {
  if (epoch_sink_ == nullptr) return;
  Stopwatch sw;
  EpochDelta d;
  d.epoch = epoch;
  d.block_size = geo_.block_size();
  d.region_size = geo_.main_region_size();
  d.data = data;
  d.blocks = std::move(blocks);
  d.roots = roots_work_;
  epoch_sink_->on_epoch_commit(std::move(d));
  stats_.add_archive_capture_ns(sw.elapsed_ns());
}

void Container::set_commit_callback(std::function<void(uint64_t)> cb) {
  std::lock_guard<std::mutex> lk(commit_cb_mu_);
  commit_cb_ = std::move(cb);
}

void Container::notify_commit(uint64_t epoch) {
  std::function<void(uint64_t)> cb;
  {
    std::lock_guard<std::mutex> lk(commit_cb_mu_);
    cb = commit_cb_;
  }
  if (cb) cb(epoch);
}

uint64_t Container::dram_bytes() const { return tracker_->bitmap_bytes(); }


std::unique_ptr<Container> Container::open(NvmDevice* dev,
                                           const CrpmOptions& opt,
                                           uint64_t target_epoch) {
  if (opt.buffered) {
    return std::make_unique<BufferedContainer>(dev, nullptr, opt,
                                               target_epoch);
  }
  return std::make_unique<DefaultContainer>(dev, nullptr, opt, target_epoch);
}

std::unique_ptr<Container> Container::open(std::unique_ptr<NvmDevice> dev,
                                           const CrpmOptions& opt,
                                           uint64_t target_epoch) {
  NvmDevice* raw = dev.get();
  if (opt.buffered) {
    return std::make_unique<BufferedContainer>(raw, std::move(dev), opt,
                                               target_epoch);
  }
  return std::make_unique<DefaultContainer>(raw, std::move(dev), opt,
                                            target_epoch);
}

std::unique_ptr<Container> Container::open_file(const std::string& path,
                                                const CrpmOptions& opt) {
  auto dev = std::make_unique<FileNvmDevice>(path, required_device_size(opt));
  return open(std::move(dev), opt);
}

// ---------------------------------------------------------------------------
// DefaultContainer
// ---------------------------------------------------------------------------

DefaultContainer::DefaultContainer(NvmDevice* dev,
                                   std::unique_ptr<NvmDevice> owned,
                                   const CrpmOptions& opt,
                                   uint64_t target_epoch)
    : Container(dev, std::move(owned), opt, target_epoch) {
  open_or_format();
  if (opt_.async_checkpoint) {
    last_captured_epoch_ = committed_epoch();
    uint32_t inflight = opt_.max_inflight_epochs;
    windows_.reserve(inflight);
    for (uint32_t i = 0; i < inflight; ++i) {
      windows_.push_back(std::make_unique<AsyncWindow>());
    }
    uint32_t shards = geo_.shard_count();
    shard_progress_.reset(new std::atomic<uint64_t>[shards]);
    shard_locks_.reserve(shards);
    for (uint32_t sh = 0; sh < shards; ++sh) {
      shard_progress_[sh].store(committed_epoch(), std::memory_order_relaxed);
      shard_locks_.push_back(std::make_unique<SpinLock>());
    }
    if (!was_fresh()) {
      // Recovery of the per-shard progress words: a crash can leave any
      // shard's record at most max_inflight_epochs ahead of the committed
      // epoch (the deepest open window at the crash). Lower values are
      // normal — sync containers never write the words, and restore /
      // renumber paths move the epoch without touching them — so only the
      // upper bound is a corruption check. Reset every word to the
      // committed epoch so the next joined commit starts from a clean
      // baseline.
      PersistSiteScope site("recovery.shards");
      uint64_t committed = committed_epoch();
      bool dirty = false;
      for (uint32_t sh = 0; sh < shards; ++sh) {
        uint64_t* word = layout_.shard_epoch_word(sh);
        CRPM_CHECK(*word <= committed + inflight,
                   "shard %u progress word %llu runs more than %u epochs "
                   "ahead of committed epoch %llu",
                   sh, (unsigned long long)*word, inflight,
                   (unsigned long long)committed);
        if (*word != committed) {
          *word = committed;
          dev_->flush(word, sizeof(uint64_t));
          dirty = true;
        }
      }
      if (dirty) dev_->fence();
    }
    pipeline_ =
        std::make_unique<AsyncCommitPipeline>(this, opt_.async_workers);
  }
}

// pipeline_ is the last-declared member, so it is destroyed first: worker
// mode drains the in-flight window while the rest of the container is
// still alive; cooperative mode discards it (see the header comment).
DefaultContainer::~DefaultContainer() = default;

void DefaultContainer::wait_committed() {
  if (pipeline_ != nullptr) pipeline_->wait_idle();
}

void DefaultContainer::annotate(const void* addr, size_t len) {
  if (len == 0) return;
  uint8_t* base = layout_.main_base();
  uint64_t off = static_cast<uint64_t>(static_cast<const uint8_t*>(addr) -
                                       base);
  CRPM_CHECK(off < geo_.main_region_size() &&
                 off + len <= geo_.main_region_size(),
             "annotate outside working state: off=%llu len=%zu",
             (unsigned long long)off, len);
  uint64_t b0 = geo_.block_of_offset(off);
  uint64_t b1 = geo_.block_of_offset(off + len - 1);
  uint64_t seg = ~uint64_t{0};
  for (uint64_t b = b0; b <= b1; ++b) {
    uint64_t s = geo_.segment_of_block(b);
    if (s != seg) {
      seg = s;
      if (!tracker_->segment_dirty(s)) copy_on_write(s);
    }
    if (!tracker_->block_dirty(b)) tracker_->dirty_blocks().set(b);
  }
}

void DefaultContainer::copy_on_write(uint64_t seg) {
  Stopwatch sw;
  SpinLock& seg_lock = tracker_->segment_lock(seg);
  seg_lock.lock();
  if (tracker_->segment_dirty(seg)) {  // another thread won the race
    seg_lock.unlock();
    return;
  }

  if (opt_.async_checkpoint) {
    // A still-open window that captured this segment owns its pipeline
    // work; its backup still guards the previous epoch and must not be
    // touched. The first post-capture writer *steals* the work (flush +
    // image snapshot) instead of copying. With more than one window
    // holding the segment, stealing from the newest would flush bytes
    // whose flush the oldest window deferred (the committed metadata can
    // still read the segment as SS_Main); help the pipeline drain the
    // oldest window and re-evaluate.
    for (;;) {
      AsyncWindow* newest = nullptr;
      int holders = 0;
      for (const auto& wp : windows_) {
        AsyncWindow& w = *wp;
        if (!w.open.load(std::memory_order_acquire)) continue;
        if (w.phase.empty() || w.phase[seg] == AsyncWindow::kIdle) continue;
        ++holders;
        if (newest == nullptr || w.epoch > newest->epoch) newest = &w;
      }
      if (holders == 0) break;
      if (holders == 1) {
        steal_captured(*newest, seg);
        seg_lock.unlock();
        stats_.add_trace_ns(sw.elapsed_ns());
        return;
      }
      seg_lock.unlock();
      pipeline_->help_drain_oldest();
      seg_lock.lock();
      if (tracker_->segment_dirty(seg)) {  // a concurrent writer finished
        seg_lock.unlock();
        stats_.add_trace_ns(sw.elapsed_ns());
        return;
      }
    }
  }

  uint8_t* state = layout_.seg_state(active_index());
  if (state[seg] == kSegMain) {
    uint32_t b = main_to_backup_[seg];
    bool differential = true;
    if (b == kNoPair) {
      b = alloc_backup(seg);
      differential = false;  // fresh backup: copy the whole segment
    }
    uint8_t* msrc = layout_.main_segment(seg);
    uint8_t* bdst = layout_.backup_segment(b);
    if (opt_.test_fault_flip_before_copy) {
      // Injected ordering bug (see CrpmOptions): commit "backup holds the
      // checkpoint" before the backup actually does. A crash during the
      // copy below then recovers stale backup bytes into main.
      state[seg] = kSegBackup;
      PersistSiteScope site("cow.flip");
      dev_->persist(&state[seg], 1);
    }
    uint64_t blocks = 0;
    uint64_t bytes = 0;
    {
      PersistSiteScope site("cow.data");
      if (differential) {
        // Block-based data copy (Figure 6, lines 9-12): only blocks
        // recorded dirty — exactly those where main and backup differ —
        // are moved.
        uint64_t first = geo_.first_block_of_segment(seg);
        uint64_t bs = geo_.block_size();
        tracker_->dirty_blocks().for_each_set(
            first, geo_.blocks_per_segment(), [&](size_t blk) {
              uint64_t rel = (blk - first) * bs;
              dev_->nt_copy(bdst + rel, msrc + rel, bs);
              ++blocks;
            });
        bytes = blocks * bs;
      } else {
        dev_->nt_copy(bdst, msrc, geo_.segment_size());
        bytes = geo_.segment_size();
      }
      dev_->fence();  // fence #1: pairing + copied data durable
    }
    if (!opt_.test_fault_flip_before_copy) {
      PersistSiteScope site("cow.flip");
      if (opt_.async_checkpoint) {
        // A background commit may bump active_index() concurrently, and
        // every open window holds a staged replica of its own epoch. For a
        // segment no window captured, all replicas agree (capture copies
        // the predecessor's replica forward, and only this segment's own
        // CoW — serialized by its lock — changes its entries), so flip
        // every one of them and stay index-agnostic.
        for (uint32_t r = 0; r < geo_.meta_replicas(); ++r) {
          uint8_t* copy = layout_.seg_state(static_cast<int>(r));
          copy[seg] = kSegBackup;
          dev_->flush(&copy[seg], 1);
        }
        dev_->fence();  // fence #2
      } else {
        state[seg] = kSegBackup;
        dev_->persist(&state[seg], 1);  // flush + fence #2
      }
    }
    tracker_->clear_segment_blocks(seg);
    stats_.add_cow(!differential, blocks, bytes);
  }
  // kSegInitial: first-ever modification, no checkpoint state to protect.
  // kSegBackup: backup already equals the checkpoint (eager CoW or
  // post-recovery state); the segment is immediately writable.
  tracker_->dirty_segments().set(seg);
  seg_lock.unlock();
  stats_.add_trace_ns(sw.elapsed_ns());
}

void DefaultContainer::checkpoint() {
  if (opt_.async_checkpoint) {
    checkpoint_async();
    return;
  }
  Stopwatch sw;
  bool leader = barrier_->arrive_and_wait();

  // Phase 0 (leader): snapshot the dirty segment set and pick the flush
  // strategy (Figure 6, lines 27-31).
  if (leader) {
    ckpt_segs_.clear();
    tracker_->dirty_segments().for_each_set(
        [&](size_t s) { ckpt_segs_.push_back(s); });
    ckpt_skip_ = ckpt_segs_.empty() && !roots_dirty_;
    ckpt_cursor_.store(0, std::memory_order_relaxed);
    ckpt_flushed_bytes_.store(0, std::memory_order_relaxed);
    if (!ckpt_skip_) {
      uint64_t dirty_bytes = tracker_->dirty_bytes_in_dirty_segments();
      ckpt_use_wbinvd_ = dirty_bytes > opt_.wbinvd_threshold;
    }
    // Export the epoch's delta now, while its values are stable (all
    // threads are stopped in this checkpoint): the sink's background
    // thread copies the payload concurrently with the flush phase below,
    // and the leader synchronizes in wait_captured() before the threads
    // resume. The captured set (dirty blocks of this epoch's dirty
    // segments) is a superset of the blocks written this epoch.
    if (!ckpt_skip_ && epoch_sink_ != nullptr) {
      std::vector<uint64_t> blocks;
      for (uint64_t s : ckpt_segs_) {
        tracker_->dirty_blocks().for_each_set(
            geo_.first_block_of_segment(s), geo_.blocks_per_segment(),
            [&](size_t blk) { blocks.push_back(blk); });
      }
      notify_epoch_sink(committed_epoch() + 1, layout_.main_base(),
                        std::move(blocks));
    }
  }
  barrier_->arrive_and_wait();

  // Nothing modified this epoch: no new checkpoint state to commit. This is
  // why read-only workloads run at NVM-NP speed (Section 5.2.1).
  if (ckpt_skip_) {
    barrier_->arrive_and_wait();
    if (leader) stats_.add_checkpoint_ns(sw.elapsed_ns());
    return;
  }

  // Phase 1: persist dirty blocks of the main region. All collective
  // threads claim dirty segments from a shared cursor.
  {
    PersistSiteScope site("ckpt.flush");
    if (ckpt_use_wbinvd_) {
      if (leader) {
        dev_->wbinvd_flush();
        uint64_t bytes = tracker_->dirty_bytes_in_dirty_segments();
        ckpt_flushed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      }
    } else {
      uint64_t bs = geo_.block_size();
      uint64_t local_bytes = 0;
      for (;;) {
        size_t i = ckpt_cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= ckpt_segs_.size()) break;
        uint64_t s = ckpt_segs_[i];
        uint64_t first = geo_.first_block_of_segment(s);
        tracker_->dirty_blocks().for_each_set(
            first, geo_.blocks_per_segment(), [&](size_t blk) {
              dev_->flush(layout_.block_addr(blk), bs);
              local_bytes += bs;
            });
      }
      ckpt_flushed_bytes_.fetch_add(local_bytes, std::memory_order_relaxed);
    }
    dev_->fence();  // per-thread: order own flushes (Figure 6, line 32)
  }
  barrier_->arrive_and_wait();

  // Phase 2 (leader): atomically promote the working state (Figure 6,
  // lines 35-42).
  if (leader) {
    int e_act = active_index();
    int e_new = (e_act + 1) % static_cast<int>(geo_.meta_replicas());
    uint8_t* act = layout_.seg_state(e_act);
    uint8_t* next = layout_.seg_state(e_new);
    {
      PersistSiteScope site("ckpt.stage");
      std::memcpy(next, act, geo_.nr_main_segs());
      for (uint64_t s : ckpt_segs_) next[s] = kSegMain;
      dev_->flush(next, geo_.nr_main_segs());
      stage_roots_for_commit();
      dev_->fence();
    }

    MetaHeader* h = layout_.header();
    h->committed_epoch += 1;  // the commit point
    {
      PersistSiteScope site("ckpt.commit");
      dev_->persist(&h->committed_epoch, sizeof(uint64_t));
    }
    dram_committed_.store(h->committed_epoch, std::memory_order_release);
    notify_commit(h->committed_epoch);
    roots_dirty_ = false;

    // Note: the in-place flush of dirty main-region blocks is persistence,
    // not copying; the paper's "checkpoint size" metric counts the data
    // *copied* to build checkpoints (CoW traffic), which add_cow tracks.

    // Eager copy-on-write (Section 3.4.2): with few dirty segments, run
    // their CoW for the next epoch now, with two batched fences.
    if (opt_.eager_cow_segments != 0 &&
        ckpt_segs_.size() <= opt_.eager_cow_segments) {
      eager_cow(ckpt_segs_);
    }

    tracker_->dirty_segments().clear_all();

    // Release the epoch sink's claim on the working state before the
    // application threads resume and mutate it. With a spare core the sink
    // staged its copy during the flush phase above and this returns
    // immediately; the wait is charged as capture time.
    if (epoch_sink_ != nullptr) {
      Stopwatch ws;
      epoch_sink_->wait_captured();
      stats_.add_archive_capture_ns(ws.elapsed_ns());
    }

    stats_.add_epoch();
    stats_.add_checkpoint_ns(sw.elapsed_ns());
  }
  barrier_->arrive_and_wait();
}

void DefaultContainer::eager_cow(const std::vector<uint64_t>& segs) {
  // After the commit above, every segment in `segs` has state SS_Main in
  // the new active array. Copy each one's dirty blocks to its paired backup
  // (skipping unpaired segments — their first CoW next epoch does a full
  // copy anyway), then flip all states with a single fence pair.
  PersistSiteScope site_copy("eager.copy");
  uint8_t* state = layout_.seg_state(active_index());
  std::vector<uint64_t> done;
  uint64_t bs = geo_.block_size();
  for (uint64_t s : segs) {
    uint32_t b = main_to_backup_[s];
    if (b == kNoPair) continue;
    uint8_t* msrc = layout_.main_segment(s);
    uint8_t* bdst = layout_.backup_segment(b);
    uint64_t first = geo_.first_block_of_segment(s);
    uint64_t blocks = 0;
    tracker_->dirty_blocks().for_each_set(
        first, geo_.blocks_per_segment(), [&](size_t blk) {
          uint64_t rel = (blk - first) * bs;
          dev_->nt_copy(bdst + rel, msrc + rel, bs);
          ++blocks;
        });
    stats_.add_cow(false, blocks, blocks * bs);
    done.push_back(s);
  }
  if (done.empty()) return;
  dev_->fence();  // all eager copies durable
  PersistSiteScope site("eager.flip");
  for (uint64_t s : done) {
    state[s] = kSegBackup;
    dev_->flush(&state[s], 1);
  }
  dev_->fence();
  for (uint64_t s : done) tracker_->clear_segment_blocks(s);
  stats_.add_eager_cow(done.size());
}

// ---------------------------------------------------------------------------
// DefaultContainer: concurrent background checkpointing (async_commit.h)
// ---------------------------------------------------------------------------

void DefaultContainer::checkpoint_async() {
  Stopwatch sw;
  bool leader = barrier_->arrive_and_wait();
  if (leader) {
    ckpt_segs_.clear();
    tracker_->dirty_segments().for_each_set(
        [&](size_t s) { ckpt_segs_.push_back(s); });
    ckpt_skip_ = ckpt_segs_.empty() && !roots_dirty_;
    if (!ckpt_skip_) {
      uint64_t epoch = last_captured_epoch_ + 1;
      AsyncWindow& w = window_of(epoch);
      // Backpressure: epoch E reuses ring slot E mod K and metadata
      // replica E mod (K+1); both are free once window E-K has closed
      // (windows close FIFO). Cooperative mode services the oldest open
      // window inline here.
      while (w.open.load(std::memory_order_acquire)) {
        Stopwatch bp;
        pipeline_->help_drain_oldest();
        stats_.add_async_backpressure_ns(bp.elapsed_ns());
      }
      uint32_t shards = geo_.shard_count();
      if (w.phase.empty()) {
        w.phase.assign(geo_.nr_main_segs(), AsyncWindow::kIdle);
        w.stolen.assign(geo_.nr_main_segs(), 0);
        w.seg_slot.assign(geo_.nr_main_segs(), 0);
        w.staging.resize(geo_.nr_main_segs());
        w.shard_cursor.reset(new std::atomic<size_t>[shards]);
        w.shard_left.reset(new std::atomic<size_t>[shards]);
        w.shard_flush_ns.reset(new std::atomic<uint64_t>[shards]);
      }
      w.epoch = epoch;
      w.segs = ckpt_segs_;
      w.blocks.assign(w.segs.size(), {});
      w.shard_slots.assign(shards, {});
      for (size_t i = 0; i < w.segs.size(); ++i) {
        uint64_t s = w.segs[i];
        tracker_->dirty_blocks().for_each_set(
            geo_.first_block_of_segment(s), geo_.blocks_per_segment(),
            [&](size_t blk) { w.blocks[i].push_back(blk); });
        w.phase[s] = AsyncWindow::kPending;
        w.stolen[s] = 0;
        w.seg_slot[s] = static_cast<uint32_t>(i);
        w.shard_slots[s % shards].push_back(static_cast<uint32_t>(i));
      }
      for (uint32_t sh = 0; sh < shards; ++sh) {
        w.shard_cursor[sh].store(0, std::memory_order_relaxed);
        w.shard_left[sh].store(w.shard_slots[sh].size(),
                               std::memory_order_relaxed);
        w.shard_flush_ns[sh].store(0, std::memory_order_relaxed);
      }
      w.roots = roots_work_;
      roots_dirty_ = false;
      w.arrivals.store(0, std::memory_order_relaxed);
      w.finishers.store(0, std::memory_order_relaxed);
      {
        // Stage this epoch's seg_state replica from its predecessor's with
        // plain stores — the pipeline flushes it at the stage step. CoWs
        // that run while windows are open keep all replicas coherent by
        // flipping every copy. windows_mu_ orders the copy (and the window
        // becoming visible) against a concurrent finalize propagating
        // SS_Backup flips into open windows' replicas: a flip either lands
        // in the predecessor's replica before this memcpy reads it, or in
        // this window's replica via propagation after it becomes visible.
        std::lock_guard<std::mutex> wl(windows_mu_);
        uint32_t replicas = geo_.meta_replicas();
        uint8_t* prev =
            layout_.seg_state(static_cast<int>((epoch - 1) % replicas));
        uint8_t* next =
            layout_.seg_state(static_cast<int>(epoch % replicas));
        std::memcpy(next, prev, geo_.nr_main_segs());
        for (uint64_t s : w.segs) next[s] = kSegMain;
        w.open.store(true, std::memory_order_release);
      }
      // Hand the epoch to the sink while every thread is stopped: the
      // payload (main-region values) starts mutating again the moment
      // this call returns, so the sink must finish its copy inside the
      // capture, not overlapped with the background commit.
      if (epoch_sink_ != nullptr) {
        std::vector<uint64_t> blocks;
        for (const auto& bl : w.blocks) {
          blocks.insert(blocks.end(), bl.begin(), bl.end());
        }
        notify_epoch_sink(epoch, layout_.main_base(), std::move(blocks));
        Stopwatch ws;
        epoch_sink_->wait_captured();
        stats_.add_archive_capture_ns(ws.elapsed_ns());
      }
      // Segment-dirty bits restart for the new epoch. Block bits are kept:
      // they mean "main may differ from backup" and only a CoW clears
      // them, so every captured block list is a conservative superset of
      // the blocks its epoch actually wrote.
      tracker_->dirty_segments().clear_all();
      last_captured_epoch_ = epoch;
      uint32_t inflight = 0;
      for (const auto& wp : windows_) {
        if (wp->open.load(std::memory_order_acquire)) ++inflight;
      }
      stats_.note_async_inflight(inflight);
      pipeline_->submit(epoch);
    }
    stats_.add_async_capture(sw.elapsed_ns());
    stats_.add_checkpoint_ns(sw.elapsed_ns());
  }
  barrier_->arrive_and_wait();
}

namespace {
// Thread CPU time, not wall time: a descheduled thread accrues nothing,
// so per-shard flush cost stays comparable even when the pipeline has
// more participants than the host has cores.
uint64_t thread_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
}
}  // namespace

void DefaultContainer::steal_captured(AsyncWindow& w, uint64_t seg) {
  if (opt_.test_fault_skip_steal_copy) {
    // Injected ordering bug (see CrpmOptions): dirty the segment without
    // flushing its captured blocks or snapshotting its image, so the
    // pipeline later commits post-capture values as the captured epoch.
    tracker_->dirty_segments().set(seg);
    return;
  }
  uint32_t slot = w.seg_slot[seg];
  const std::vector<uint64_t>& blocks = w.blocks[slot];
  if (w.phase[seg] == AsyncWindow::kPending) {
    // The pipeline has not flushed this segment yet: do it now, before the
    // first post-capture store could reach media ahead of the captured
    // image.
    uint64_t t0 = thread_cpu_ns();
    PersistSiteScope site("async.steal");
    uint64_t bs = geo_.block_size();
    for (uint64_t blk : blocks) dev_->flush(layout_.block_addr(blk), bs);
    dev_->fence();
    w.phase[seg] = AsyncWindow::kFlushed;
    stats_.add_async_flush_bytes(blocks.size() * bs);
    w.shard_flush_ns[seg % geo_.shard_count()].fetch_add(
        thread_cpu_ns() - t0, std::memory_order_relaxed);
  }
  if (w.stolen[seg] == 0) {
    // Snapshot the capture-epoch image before it is overwritten; the
    // pipeline's finalize stage rebuilds the backup from it post-commit.
    // (The segment is not yet marked dirty, so no other thread can be
    // storing into it while this copy reads it.)
    const uint8_t* src = layout_.main_segment(seg);
    w.staging[seg].assign(src, src + geo_.segment_size());
    w.stolen[seg] = 1;
    stats_.add_async_steal();
    // Finalize will rebuild the backup from this snapshot, so after the
    // window closes main-vs-backup differs only by post-capture stores.
    // Restart the block bits now — the captured list is already in the
    // window, and every post-capture writer orders behind this lock
    // before setting its bit — exactly as a sync-mode CoW would, or the
    // hot segments' "may differ" superset grows monotonically and the
    // pipeline flushes it in full every epoch.
    tracker_->clear_segment_blocks(seg);
  }
  tracker_->dirty_segments().set(seg);
}

uint64_t DefaultContainer::async_oldest_open_epoch() const {
  uint64_t oldest = 0;
  for (const auto& wp : windows_) {
    const AsyncWindow& w = *wp;
    if (!w.open.load(std::memory_order_acquire)) continue;
    if (oldest == 0 || w.epoch < oldest) oldest = w.epoch;
  }
  return oldest;
}

void DefaultContainer::async_service_window_epoch(uint64_t epoch,
                                                  uint32_t participants) {
  AsyncWindow& w = window_of(epoch);
  CRPM_CHECK(w.open.load(std::memory_order_acquire) && w.epoch == epoch,
             "pipeline servicing epoch %llu but its window is not open",
             (unsigned long long)epoch);
  uint32_t shards = geo_.shard_count();
  uint64_t bs = geo_.block_size();
  uint32_t me = w.arrivals.fetch_add(1, std::memory_order_relaxed);

  // Shard-local commit: persist the shard's durable progress record
  // ("shard.commit"). Record and mirror only ever rise; the lock
  // serializes the read-check-persist so a late finisher of an older
  // window cannot clobber a newer window's record.
  auto shard_commit = [&](uint32_t sh) {
    std::lock_guard<SpinLock> lk(*shard_locks_[sh]);
    if (shard_progress_[sh].load(std::memory_order_relaxed) >= epoch) return;
    uint64_t* word = layout_.shard_epoch_word(sh);
    *word = epoch;
    PersistSiteScope site("shard.commit");
    dev_->persist(word, sizeof(uint64_t));
    shard_progress_[sh].store(epoch, std::memory_order_release);
  };

  // Flush stage, sharded: each participant sweeps its own shard first,
  // then steals from the others. Segments the write hook stole are
  // already flushed. A segment still held by an OLDER open window is
  // *deferred* to the join: flushing it now could overwrite main-region
  // bytes that the committed metadata still reads as SS_Main (the older
  // window's finalize has not rebuilt the backup yet).
  for (uint32_t probe = 0; probe < shards; ++probe) {
    uint32_t sh = (me + probe) % shards;
    const std::vector<uint32_t>& slots = w.shard_slots[sh];
    for (;;) {
      size_t i = w.shard_cursor[sh].fetch_add(1, std::memory_order_relaxed);
      if (i >= slots.size()) break;
      uint32_t slot = slots[i];
      uint64_t s = w.segs[slot];
      {
        std::lock_guard<SpinLock> lk(tracker_->segment_lock(s));
        bool held_older = false;
        for (const auto& wp : windows_) {
          const AsyncWindow& o = *wp;
          if (&o == &w || !o.open.load(std::memory_order_acquire)) continue;
          if (o.epoch < epoch && !o.phase.empty() &&
              o.phase[s] != AsyncWindow::kIdle) {
            held_older = true;
            break;
          }
        }
        if (w.phase[s] == AsyncWindow::kPending && !held_older) {
          uint64_t t0 = thread_cpu_ns();
          PersistSiteScope site("async.flush");
          for (uint64_t blk : w.blocks[slot]) {
            dev_->flush(layout_.block_addr(blk), bs);
          }
          dev_->fence();
          w.phase[s] = AsyncWindow::kFlushed;
          stats_.add_async_flush_bytes(w.blocks[slot].size() * bs);
          w.shard_flush_ns[sh].fetch_add(thread_cpu_ns() - t0,
                                         std::memory_order_relaxed);
        }
      }
      if (w.shard_left[sh].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        shard_commit(sh);
      }
    }
  }
  // The last participant to finish flushing runs the join + tail.
  if (w.finishers.fetch_add(1, std::memory_order_acq_rel) + 1 <
      participants) {
    return;
  }

  // Join: windows commit strictly FIFO. Wait for the predecessor to
  // close, flush what its presence deferred (safe now: its finalize has
  // flipped those segments to SS_Backup in every committed replica, and
  // still-kPending means no post-capture store happened — a store would
  // have gone through the write hook's steal), then min-reduce the shard
  // progress records — the in-process analogue of SimComm::allreduce_min
  // in a coordinated commit — as a cross-check before the joined commit.
  pipeline_->wait_closed_at_least(epoch - 1);
  {
    bool any = false;
    PersistSiteScope site("async.flush");
    for (size_t slot = 0; slot < w.segs.size(); ++slot) {
      uint64_t s = w.segs[slot];
      std::lock_guard<SpinLock> lk(tracker_->segment_lock(s));
      if (w.phase[s] != AsyncWindow::kPending) continue;
      uint64_t t0 = thread_cpu_ns();
      for (uint64_t blk : w.blocks[slot]) {
        dev_->flush(layout_.block_addr(blk), bs);
      }
      w.phase[s] = AsyncWindow::kFlushed;
      stats_.add_async_flush_bytes(w.blocks[slot].size() * bs);
      w.shard_flush_ns[s % shards].fetch_add(thread_cpu_ns() - t0,
                                             std::memory_order_relaxed);
      any = true;
    }
    if (any) dev_->fence();
  }
  // Shards with no captured segments still participate in the join: bump
  // their records so the min-reduce below covers every shard.
  for (uint32_t sh = 0; sh < shards; ++sh) {
    if (w.shard_slots[sh].empty()) shard_commit(sh);
  }
  uint64_t min_progress = ~uint64_t{0};
  for (uint32_t sh = 0; sh < shards; ++sh) {
    uint64_t p = shard_progress_[sh].load(std::memory_order_acquire);
    if (p < min_progress) min_progress = p;
  }
  CRPM_CHECK(min_progress >= epoch,
             "joined commit of epoch %llu saw shard progress %llu",
             (unsigned long long)epoch, (unsigned long long)min_progress);

  // Stage: persist the seg_state replica staged at capture and the
  // captured roots. Epoch E's metadata copy is index E mod replicas.
  int e_new = static_cast<int>(epoch % geo_.meta_replicas());
  {
    PersistSiteScope site("async.stage");
    dev_->flush(layout_.seg_state(e_new), geo_.nr_main_segs());
    uint64_t* dst = layout_.roots(e_new);
    std::copy(w.roots.begin(), w.roots.end(), dst);
    dev_->flush(dst, 8 * kNumRoots);
    dev_->fence();
  }

  // Commit point of the joined epoch.
  MetaHeader* h = layout_.header();
  h->committed_epoch = epoch;
  {
    PersistSiteScope site("async.commit");
    dev_->persist(&h->committed_epoch, sizeof(uint64_t));
  }
  dram_committed_.store(epoch, std::memory_order_release);
  stats_.add_epoch();
  notify_commit(epoch);

  // Finalize: rebuild stolen segments' backups from their capture-time
  // images so the new epoch is fully guarded again, then release every
  // captured segment from the window.
  for (size_t slot = 0; slot < w.segs.size(); ++slot) {
    uint64_t s = w.segs[slot];
    std::lock_guard<SpinLock> lk(tracker_->segment_lock(s));
    if (w.stolen[s] != 0) {
      std::lock_guard<std::mutex> wl(windows_mu_);
      finalize_stolen(w, s, w.blocks[slot]);
      w.stolen[s] = 0;
    }
    w.phase[s] = AsyncWindow::kIdle;
  }
  // Flush critical path of this window: the slowest shard bounds how fast
  // the flush stage can finish no matter how many participants help.
  uint64_t crit = 0;
  for (uint32_t sh = 0; sh < shards; ++sh) {
    uint64_t ns = w.shard_flush_ns[sh].load(std::memory_order_relaxed);
    if (ns > crit) crit = ns;
  }
  stats_.add_async_flush_crit_ns(crit);
  w.open.store(false, std::memory_order_release);
  pipeline_->note_closed(epoch);
}

void DefaultContainer::finalize_stolen(AsyncWindow& w, uint64_t seg,
                                       const std::vector<uint64_t>& blocks) {
  // Post-commit, the committed image of `seg` nominally lives in main
  // (SS_Main) — but its media copy is already being overwritten by
  // next-epoch stores. The DRAM snapshot taken at steal time holds the
  // pure committed image: rebuild the backup from it and flip the segment
  // to SS_Backup, after which it copy-on-writes normally again.
  std::vector<uint8_t>& img = w.staging[seg];
  bool full = main_to_backup_[seg] == kNoPair;
  uint64_t blocks_copied = 0;
  uint64_t bytes = 0;
  {
    PersistSiteScope site("async.final");
    uint32_t b;
    if (full) {
      b = alloc_backup(seg);
      dev_->nt_copy(layout_.backup_segment(b), img.data(),
                    geo_.segment_size());
      bytes = geo_.segment_size();
    } else {
      b = main_to_backup_[seg];
      uint64_t first = geo_.first_block_of_segment(seg);
      uint64_t bs = geo_.block_size();
      for (uint64_t blk : blocks) {
        uint64_t rel = (blk - first) * bs;
        dev_->nt_copy(layout_.backup_segment(b) + rel, img.data() + rel, bs);
      }
      blocks_copied = blocks.size();
      bytes = blocks.size() * bs;
    }
    dev_->fence();  // pairing + backup image durable before the flip
    uint32_t replicas = geo_.meta_replicas();
    uint8_t* state =
        layout_.seg_state(static_cast<int>(w.epoch % replicas));
    state[seg] = kSegBackup;
    dev_->persist(&state[seg], 1);
    // Propagate the flip into newer open windows' staged replicas (caller
    // holds windows_mu_, so no capture memcpy races this). A newer window
    // that re-captured the segment keeps its SS_Main override — its own
    // commit supersedes this one; every other staged replica inherited
    // SS_Main from this epoch's copy-forward and must learn the backup now
    // guards the segment.
    for (const auto& wp : windows_) {
      AsyncWindow& n = *wp;
      if (&n == &w || !n.open.load(std::memory_order_acquire)) continue;
      if (n.epoch <= w.epoch) continue;
      if (!n.phase.empty() && n.phase[seg] != AsyncWindow::kIdle) continue;
      uint8_t* ns = layout_.seg_state(static_cast<int>(n.epoch % replicas));
      ns[seg] = kSegBackup;
      dev_->flush(&ns[seg], 1);  // fenced by that window's stage step
    }
  }
  stats_.add_cow(full, blocks_copied, bytes);
  img.clear();
  img.shrink_to_fit();
}

// ---------------------------------------------------------------------------
// BufferedContainer
// ---------------------------------------------------------------------------

BufferedContainer::BufferedContainer(NvmDevice* dev,
                                     std::unique_ptr<NvmDevice> owned,
                                     const CrpmOptions& opt,
                                     uint64_t target_epoch)
    : Container(dev, std::move(owned), opt, target_epoch) {
  buf_storage_.resize(geo_.main_region_size() + 4096);
  // Align the DRAM working state so blocks are cache-line aligned.
  auto raw = reinterpret_cast<uintptr_t>(buf_storage_.data());
  buf_ = reinterpret_cast<uint8_t*>((raw + 4095) & ~uintptr_t{4095});
  cur_dirty_.reset_size(geo_.nr_blocks());
  prev_dirty_.reset_size(geo_.nr_blocks());
  open_or_format();
  if (!was_fresh()) {
    Stopwatch sw;
    load_dram_from_main();
    recovery_load_ns_ = sw.elapsed_ns();
  }
}

uint64_t BufferedContainer::dram_bytes() const {
  return geo_.main_region_size() + 2 * ((geo_.nr_blocks() + 7) / 8) +
         Container::dram_bytes();
}

void BufferedContainer::load_dram_from_main() {
  // region_sync() already made main == checkpoint state; the second
  // recovery phase of Section 5.5 copies it into the DRAM buffer.
  std::memcpy(buf_, layout_.main_base(), geo_.main_region_size());
}

void BufferedContainer::annotate(const void* addr, size_t len) {
  if (len == 0) return;
  uint64_t off =
      static_cast<uint64_t>(static_cast<const uint8_t*>(addr) - buf_);
  CRPM_CHECK(off < geo_.main_region_size() &&
                 off + len <= geo_.main_region_size(),
             "annotate outside working state: off=%llu len=%zu",
             (unsigned long long)off, len);
  uint64_t b0 = geo_.block_of_offset(off);
  uint64_t b1 = geo_.block_of_offset(off + len - 1);
  for (uint64_t b = b0; b <= b1; ++b) {
    if (!cur_dirty_.test(b)) cur_dirty_.set(b);
  }
}

void BufferedContainer::checkpoint() {
  Stopwatch sw;
  bool leader = barrier_->arrive_and_wait();
  uint64_t e = committed_epoch() + 1;  // the epoch being committed
  bool to_main = targets_main(e);

  if (leader) {
    // Phase 0: collect segments with blocks dirty in epochs e-1 or e, make
    // sure each has what it needs (a pairing when targeting the backup
    // region; full first copy on a fresh pairing), and detach any committed
    // seg_state entry that points into the region we are about to write.
    ckpt_segs_.clear();
    ckpt_full_copy_.clear();
    uint8_t* act = layout_.seg_state(active_index());
    bool flipped = false;
    for (uint64_t s = 0; s < geo_.nr_main_segs(); ++s) {
      uint64_t first = geo_.first_block_of_segment(s);
      if (!cur_dirty_.any_in_range(first, geo_.blocks_per_segment()) &&
          !prev_dirty_.any_in_range(first, geo_.blocks_per_segment())) {
        continue;
      }
      bool full = false;
      if (!to_main) {
        if (main_to_backup_[s] == kNoPair) {
          alloc_backup(s);
          full = true;  // fresh backup segment: nothing valid in it yet
        }
      }
      // If the committed metadata says this segment's checkpoint lives in
      // the region we are about to overwrite, repoint it at the other
      // region first. Both copies are identical for such a segment (its
      // last copy was two or more epochs ago, so both parities received
      // it), hence the active-array update preserves the checkpoint.
      uint8_t points_to_target = to_main ? kSegMain : kSegBackup;
      if (act[s] == points_to_target) {
        act[s] = to_main ? kSegBackup : kSegMain;
        PersistSiteScope site("ckpt.detach");
        dev_->flush(&act[s], 1);
        flipped = true;
      }
      ckpt_segs_.push_back(s);
      ckpt_full_copy_.push_back(full ? 1 : 0);
    }
    if (flipped) {
      PersistSiteScope site("ckpt.detach");
      dev_->fence();
    }
    ckpt_skip_ = ckpt_segs_.empty() && !roots_dirty_;
    ckpt_cursor_.store(0, std::memory_order_relaxed);
    // Export the epoch's delta now, while all threads are stopped in this
    // checkpoint: cur_dirty_ is exactly the set of blocks modified during
    // the committing epoch, and the DRAM buffer holds their final values.
    // The sink's background thread copies the payload concurrently with
    // the replication phase below; wait_captured() synchronizes before
    // the threads resume.
    if (!ckpt_skip_ && epoch_sink_ != nullptr) {
      std::vector<uint64_t> blocks;
      cur_dirty_.for_each_set([&](size_t blk) { blocks.push_back(blk); });
      notify_epoch_sink(e, buf_, std::move(blocks));
    }
  }
  barrier_->arrive_and_wait();

  if (ckpt_skip_) {
    barrier_->arrive_and_wait();
    if (leader) stats_.add_checkpoint_ns(sw.elapsed_ns());
    return;
  }

  // Phase 1: replicate dirty blocks from DRAM into the target region.
  PersistSiteScope site_repl("ckpt.replicate");
  uint64_t bs = geo_.block_size();
  uint64_t local_bytes = 0;
  for (;;) {
    size_t i = ckpt_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= ckpt_segs_.size()) break;
    uint64_t s = ckpt_segs_[i];
    uint8_t* target = to_main
                          ? layout_.main_segment(s)
                          : layout_.backup_segment(main_to_backup_[s]);
    const uint8_t* src = buf_ + geo_.segment_offset(s);
    if (ckpt_full_copy_[i] != 0) {
      dev_->nt_copy(target, src, geo_.segment_size());
      local_bytes += geo_.segment_size();
      continue;
    }
    uint64_t first = geo_.first_block_of_segment(s);
    AtomicBitmap::for_each_set_union(
        cur_dirty_, prev_dirty_, first, geo_.blocks_per_segment(),
        [&](size_t blk) {
          uint64_t rel = (blk - first) * bs;
          dev_->nt_copy(target + rel, src + rel, bs);
          local_bytes += bs;
        });
  }
  dev_->fence();
  stats_.add_checkpoint_bytes(local_bytes);
  barrier_->arrive_and_wait();

  // Phase 2 (leader): commit.
  if (leader) {
    int e_act = active_index();
    int e_new = (e_act + 1) % static_cast<int>(geo_.meta_replicas());
    uint8_t* act = layout_.seg_state(e_act);
    uint8_t* next = layout_.seg_state(e_new);
    {
      PersistSiteScope site("ckpt.stage");
      std::memcpy(next, act, geo_.nr_main_segs());
      for (uint64_t s : ckpt_segs_) next[s] = to_main ? kSegMain : kSegBackup;
      dev_->flush(next, geo_.nr_main_segs());
      stage_roots_for_commit();
      dev_->fence();
    }

    MetaHeader* h = layout_.header();
    h->committed_epoch += 1;
    {
      PersistSiteScope site("ckpt.commit");
      dev_->persist(&h->committed_epoch, sizeof(uint64_t));
    }
    dram_committed_.store(h->committed_epoch, std::memory_order_release);
    notify_commit(h->committed_epoch);
    roots_dirty_ = false;

    // Age the dirty generations: blocks dirty in the just-committed epoch
    // must also be replicated at the next checkpoint (into the other
    // region).
    prev_dirty_.assign_and_clear(cur_dirty_);

    // Release the epoch sink's claim on the DRAM working buffer before the
    // application threads resume and mutate it (see DefaultContainer).
    if (epoch_sink_ != nullptr) {
      Stopwatch ws;
      epoch_sink_->wait_captured();
      stats_.add_archive_capture_ns(ws.elapsed_ns());
    }

    stats_.add_epoch();
    stats_.add_checkpoint_ns(sw.elapsed_ns());
  }
  barrier_->arrive_and_wait();
}

}  // namespace crpm
