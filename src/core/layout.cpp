#include "core/layout.h"

#include <cstring>

#include "util/logging.h"

namespace crpm {

namespace {

bool is_pow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint32_t log2_u64(uint64_t v) {
  return 63u - static_cast<uint32_t>(__builtin_clzll(v));
}

uint64_t round_up(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

CrpmOptions CrpmOptions::validated() const {
  CrpmOptions o = *this;
  CRPM_CHECK(is_pow2(o.block_size) && o.block_size >= kCacheLineSize,
             "block_size must be a power of two >= 64, got %llu",
             (unsigned long long)o.block_size);
  CRPM_CHECK(is_pow2(o.segment_size) && o.segment_size >= o.block_size,
             "segment_size must be a power of two >= block_size, got %llu",
             (unsigned long long)o.segment_size);
  CRPM_CHECK(o.main_region_size > 0, "main_region_size must be positive");
  CRPM_CHECK(o.backup_ratio > 0.0 && o.backup_ratio <= 1.0,
             "backup_ratio must be in (0, 1], got %f", o.backup_ratio);
  CRPM_CHECK(o.thread_count >= 1, "thread_count must be >= 1");
  CRPM_CHECK(o.engine == "foca" || o.engine == "undolog" ||
                 o.engine == "pagecow" || o.engine == "adaptive",
             "unknown engine '%s' (foca|undolog|pagecow|adaptive)",
             o.engine.c_str());
  CRPM_CHECK(o.adaptive_dense_threshold > 0.0 &&
                 o.adaptive_dense_threshold <= 1.0,
             "adaptive_dense_threshold must be in (0, 1], got %f",
             o.adaptive_dense_threshold);
  CRPM_CHECK(o.adaptive_sparse_threshold >= 0.0 &&
                 o.adaptive_sparse_threshold < o.adaptive_dense_threshold,
             "adaptive_sparse_threshold must be in [0, dense), got %f",
             o.adaptive_sparse_threshold);
  CRPM_CHECK(o.adaptive_hysteresis_epochs >= 1,
             "adaptive_hysteresis_epochs must be >= 1");
  CRPM_CHECK(!(o.buffered && o.async_checkpoint),
             "async_checkpoint requires default mode: buffered containers "
             "already keep the working state off-NVM");
  CRPM_CHECK(o.max_inflight_epochs >= 1,
             "max_inflight_epochs must be >= 1");
  CRPM_CHECK(o.commit_shards >= 1, "commit_shards must be >= 1");
  // Multi-window commit is an async-pipeline feature: sync and buffered
  // containers alternate over exactly two metadata copies, so they stay
  // double-buffered (one in-flight epoch, one shard domain).
  if (!o.async_checkpoint) {
    o.max_inflight_epochs = 1;
    o.commit_shards = 1;
  }
  if (o.max_inflight_epochs > kMaxInflightEpochs) {
    o.max_inflight_epochs = kMaxInflightEpochs;
  }
  if (o.commit_shards > kMaxCommitShards) o.commit_shards = kMaxCommitShards;
  if (o.restore_workers > kMaxRestoreWorkers) {
    o.restore_workers = kMaxRestoreWorkers;
  }
  // Eager CoW copies from the (concurrently mutated) main region inside
  // the commit path; in async mode that would snapshot post-capture
  // values, so it is disabled.
  if (o.async_checkpoint) o.eager_cow_segments = 0;
  // Buffered mode keeps committed data distributed over BOTH regions, so a
  // backup segment may never be recycled away from its main segment; force
  // a full backup region (Section 3.5).
  if (o.buffered) o.backup_ratio = 1.0;
  o.main_region_size = round_up(o.main_region_size, o.segment_size);
  return o;
}

Geometry::Geometry(const CrpmOptions& opt_in) {
  CrpmOptions opt = opt_in.validated();
  segment_size_ = opt.segment_size;
  block_size_ = opt.block_size;
  segment_shift_ = log2_u64(segment_size_);
  block_shift_ = log2_u64(block_size_);
  blocks_per_segment_ = segment_size_ / block_size_;
  nr_main_segs_ = opt.main_region_size / segment_size_;
  nr_backup_segs_ = static_cast<uint64_t>(
      double(nr_main_segs_) * opt.backup_ratio + 0.5);
  if (nr_backup_segs_ == 0) nr_backup_segs_ = 1;
  if (nr_backup_segs_ > nr_main_segs_) nr_backup_segs_ = nr_main_segs_;

  meta_replicas_ = opt.max_inflight_epochs + 1;
  shard_count_ = opt.commit_shards;

  seg_state_offset_ = 4096;
  backup_to_main_offset_ =
      round_up(seg_state_offset_ + uint64_t(meta_replicas_) * nr_main_segs_,
               64);
  roots_offset_ =
      round_up(backup_to_main_offset_ + 4 * nr_backup_segs_, 64);
  shard_epochs_offset_ = round_up(
      roots_offset_ + uint64_t(meta_replicas_) * 8 * kNumRoots, 64);
  // Segments must be block- and cache-line-aligned within the device; align
  // the main region to the larger of segment size and 4 KB so page-based
  // tracers can also target it.
  uint64_t align = segment_size_ > 4096 ? segment_size_ : 4096;
  main_region_offset_ = round_up(
      shard_epochs_offset_ + uint64_t(shard_count_) * kShardEpochStride,
      align);
  backup_region_offset_ =
      main_region_offset_ + nr_main_segs_ * segment_size_;
  device_size_ = backup_region_offset_ + nr_backup_segs_ * segment_size_;
}

void Layout::format(const CrpmOptions& opt) {
  MetaHeader* h = header();
  std::memset(h, 0, sizeof(MetaHeader));
  h->magic = kMetaMagic;
  h->version = kMetaVersion;
  h->flags = opt.buffered ? 1u : 0u;
  h->segment_size = geo_.segment_size();
  h->block_size = geo_.block_size();
  h->nr_main_segs = geo_.nr_main_segs();
  h->nr_backup_segs = geo_.nr_backup_segs();
  h->main_region_offset = geo_.main_region_offset();
  h->backup_region_offset = geo_.backup_region_offset();
  h->seg_state_offset = geo_.seg_state_offset();
  h->backup_to_main_offset = geo_.backup_to_main_offset();
  h->roots_offset = geo_.roots_offset();
  h->meta_replicas = geo_.meta_replicas();
  h->shard_count = geo_.shard_count();
  h->shard_epochs_offset = geo_.shard_epochs_offset();
  h->committed_epoch = 0;
  h->initialized = 0;

  uint64_t replicas = geo_.meta_replicas();
  std::memset(seg_state(0), kSegInitial, replicas * geo_.nr_main_segs());
  uint32_t* b2m = backup_to_main();
  for (uint64_t i = 0; i < geo_.nr_backup_segs(); ++i) b2m[i] = kNoPair;
  std::memset(roots(0), 0, replicas * 8 * kNumRoots);
  for (uint32_t s = 0; s < geo_.shard_count(); ++s) *shard_epoch_word(s) = 0;

  dev_->flush(h, sizeof(MetaHeader));
  dev_->flush(seg_state(0), replicas * geo_.nr_main_segs());
  dev_->flush(b2m, 4 * geo_.nr_backup_segs());
  dev_->flush(roots(0), replicas * 8 * kNumRoots);
  dev_->flush(shard_epoch_word(0), geo_.shard_count() * kShardEpochStride);
  dev_->fence();

  // The initialized flag is persisted last: a crash mid-format leaves a
  // container that will simply be reformatted on the next open.
  h->initialized = 1;
  dev_->persist(&h->initialized, 1);
}

void Layout::check_header(const CrpmOptions& opt) const {
  const MetaHeader* h = header();
  CRPM_CHECK(h->magic == kMetaMagic, "not a crpm container (magic=%llx)",
             (unsigned long long)h->magic);
  CRPM_CHECK(h->version == kMetaVersion, "container version %u unsupported",
             h->version);
  CRPM_CHECK(h->segment_size == geo_.segment_size() &&
                 h->block_size == geo_.block_size() &&
                 h->nr_main_segs == geo_.nr_main_segs() &&
                 h->nr_backup_segs == geo_.nr_backup_segs(),
             "geometry mismatch: container was created with "
             "seg=%llu blk=%llu main=%llu backup=%llu",
             (unsigned long long)h->segment_size,
             (unsigned long long)h->block_size,
             (unsigned long long)h->nr_main_segs,
             (unsigned long long)h->nr_backup_segs);
  CRPM_CHECK(h->meta_replicas == geo_.meta_replicas() &&
                 h->shard_count == geo_.shard_count(),
             "commit-pipeline geometry mismatch: container was created with "
             "%u metadata replicas and %u commit shards, options ask for "
             "%u and %u",
             h->meta_replicas, h->shard_count, geo_.meta_replicas(),
             geo_.shard_count());
  bool want_buffered = opt.buffered;
  CRPM_CHECK(((h->flags & 1u) != 0) == want_buffered,
             "container buffered-mode flag mismatch");
}

}  // namespace crpm
