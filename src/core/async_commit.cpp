#include "core/async_commit.h"

#include "core/container.h"

namespace crpm {

AsyncCommitPipeline::AsyncCommitPipeline(DefaultContainer* container,
                                         uint32_t workers)
    : c_(container), workers_n_(workers) {
  threads_.reserve(workers_n_);
  for (uint32_t i = 0; i < workers_n_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

AsyncCommitPipeline::~AsyncCommitPipeline() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
  // Cooperative mode: a still-open window is discarded (crash semantics);
  // see ~DefaultContainer().
}

void AsyncCommitPipeline::submit() {
  if (workers_n_ == 0) return;  // cooperative: serviced by wait_idle()
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_open_ = true;
    ++gen_;
  }
  cv_work_.notify_all();
}

void AsyncCommitPipeline::wait_idle() {
  if (workers_n_ == 0) {
    // Cooperative mode: run the pipeline inline. service_mu_ admits one
    // servicer; late arrivals find the window already closed and return.
    std::lock_guard<std::mutex> lk(service_mu_);
    c_->async_service_window(1);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return !window_open_; });
}

void AsyncCommitPipeline::mark_closed() {
  if (workers_n_ == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_open_ = false;
  }
  cv_idle_.notify_all();
}

void AsyncCommitPipeline::worker_loop() {
  uint64_t served = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return shutdown_ || (window_open_ && gen_ != served);
      });
      // Drain before exiting: an in-flight window is completed even when
      // shutdown raced with its submission.
      if (shutdown_ && !(window_open_ && gen_ != served)) return;
      served = gen_;
    }
    c_->async_service_window(workers_n_);
  }
}

}  // namespace crpm
