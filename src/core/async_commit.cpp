#include "core/async_commit.h"

#include "core/container.h"
#include "util/logging.h"

namespace crpm {

AsyncCommitPipeline::AsyncCommitPipeline(DefaultContainer* container,
                                         uint32_t workers)
    : c_(container), workers_n_(workers) {
  threads_.reserve(workers_n_);
  for (uint32_t i = 0; i < workers_n_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

AsyncCommitPipeline::~AsyncCommitPipeline() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
  // Cooperative mode: still-open windows are discarded (crash semantics);
  // see ~DefaultContainer().
}

void AsyncCommitPipeline::submit(uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (submitted_ == 0) {
      first_epoch_ = epoch;
    } else {
      CRPM_CHECK(epoch == first_epoch_ + submitted_,
                 "async epochs must be submitted in order");
    }
    ++submitted_;
  }
  if (workers_n_ != 0) cv_work_.notify_all();
}

void AsyncCommitPipeline::wait_idle() {
  if (workers_n_ == 0) {
    // Cooperative mode: run the pipeline inline, oldest window first.
    // service_mu_ admits one servicer; late arrivals find the windows
    // already closed and return.
    std::lock_guard<std::mutex> lk(service_mu_);
    for (;;) {
      uint64_t e = c_->async_oldest_open_epoch();
      if (e == 0) return;
      c_->async_service_window_epoch(e, 1);
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_closed_.wait(lk, [&] { return closed_ == submitted_; });
}

void AsyncCommitPipeline::note_closed(uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    CRPM_CHECK(epoch == first_epoch_ + closed_,
               "async windows must close in FIFO order");
    ++closed_;
  }
  cv_closed_.notify_all();
}

void AsyncCommitPipeline::wait_closed_at_least(uint64_t epoch) {
  std::unique_lock<std::mutex> lk(mu_);
  if (submitted_ == 0 || epoch < first_epoch_) return;
  if (workers_n_ == 0) {
    // Cooperative servicing is strictly oldest-first, so a window's
    // predecessor is always closed by the time its tail runs.
    CRPM_CHECK(first_epoch_ + closed_ > epoch,
               "cooperative pipeline serviced a window out of order");
    return;
  }
  cv_closed_.wait(lk, [&] { return first_epoch_ + closed_ > epoch; });
}

void AsyncCommitPipeline::help_drain_oldest() {
  if (workers_n_ == 0) {
    std::lock_guard<std::mutex> lk(service_mu_);
    uint64_t e = c_->async_oldest_open_epoch();
    if (e != 0) c_->async_service_window_epoch(e, 1);
    return;
  }
  // Worker mode: the pool owns the windows; wait for the next close.
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_ == submitted_) return;
  uint64_t seen = closed_;
  cv_closed_.wait(lk, [&] { return closed_ != seen; });
}

void AsyncCommitPipeline::worker_loop() {
  // Every worker participates in every submitted window, in epoch order:
  // the per-window flush stage is work-shared over the shard cursors, and
  // the last participant to arrive runs the join + tail. A worker done
  // with window E moves straight to E+1's flush while E's tail is still
  // running on whichever worker arrived last.
  uint64_t served = 0;
  for (;;) {
    uint64_t target;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || served < submitted_; });
      // Drain before exiting: in-flight windows are completed even when
      // shutdown raced with their submission.
      if (served >= submitted_) return;
      target = first_epoch_ + served;
    }
    c_->async_service_window_epoch(target, workers_n_);
    ++served;
  }
}

}  // namespace crpm
