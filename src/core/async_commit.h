// Background commit pipeline for concurrent checkpointing
// (CrpmOptions::async_checkpoint; DESIGN.md §10).
//
// In async mode crpm_checkpoint() runs only a short stop-the-world
// *capture* phase: it snapshots the dirty segment set, each captured
// segment's dirty-block list and the working roots into an AsyncWindow,
// stages the epoch's seg_state replica in place, hands the epoch to the
// sink, and returns. Up to max_inflight_epochs windows can be open at
// once; each stages into its own metadata replica (epoch E uses copy
// E mod replicas) and the windows join strictly FIFO at the commit
// point. The pipeline drives every window through:
//
//   flush     per captured segment (under its per-segment lock): flush
//             the captured blocks of the main region and fence
//             ("async.flush"). Work is sharded — segment s belongs to
//             shard s % commit_shards; each participant sweeps its own
//             shard first, then steals from the others. A segment still
//             held by an OLDER open window is skipped (deferred): its
//             main-region bytes must not reach media while the committed
//             metadata can still say SS_Main for it. The write hook
//             *steals* the flush for any captured segment it touches
//             first ("async.steal"), and also snapshots the segment's
//             capture-epoch image into DRAM before its first
//             post-capture store lands.
//   shard     when a shard's flush pass for the window completes, its
//             durable progress word is advanced ("shard.commit") — the
//             shard-local commit.
//   join      the last participant waits for the predecessor window to
//             close (FIFO), flushes any deferred segments (now safe),
//             and min-reduces the per-shard progress records — the
//             in-process analogue of SimComm::allreduce_min — before
//             proceeding.
//   stage     flush the staged seg_state replica and the captured roots
//             ("async.stage").
//   commit    persist the committed_epoch bump ("async.commit") — the
//             atomic commit point of the joined epoch.
//   finalize  per stolen segment: rebuild its backup from the DRAM image
//             snapshot and flip it to SS_Backup ("async.final"),
//             propagating the flip into newer open windows' staged
//             replicas; then release every captured segment.
//
// With async_workers >= 1 the stages run on a pool of background
// threads; every worker participates in every window, in epoch order,
// so flushing for window E+1 overlaps window E's tail. With
// async_workers == 0 the pipeline runs *cooperatively*: the same code
// executes inline on application threads (inside wait_committed(), the
// next capture's backpressure wait, and the write hook's blocked-steal
// wait), servicing the oldest open window first. Cooperative mode keeps
// the persistence-event stream a deterministic function of the
// workload, which the crash-matrix harness (src/chaos, scenarios
// "core-async" and "core-multiwindow") depends on — CrashSimDevice is
// single-threaded, so simulated-crash tests must use cooperative mode.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/layout.h"

namespace crpm {

class DefaultContainer;

// One captured-but-uncommitted epoch. Owned by the container (one ring
// slot per tolerated in-flight epoch; epoch E lives in slot E mod
// max_inflight_epochs); written by the capture leader while the world is
// stopped, then processed by the pipeline. Per-segment fields (phase,
// stolen, staging, seg_slot) are guarded by that segment's DirtyTracker
// lock once the window is open.
struct AsyncWindow {
  enum Phase : uint8_t {
    kIdle = 0,     // not captured by this window (or released)
    kPending = 1,  // captured; blocks not yet flushed
    kFlushed = 2,  // captured; blocks durable, commit still pending
  };

  std::atomic<bool> open{false};
  uint64_t epoch = 0;
  std::vector<uint64_t> segs;                  // captured segments, ascending
  std::vector<std::vector<uint64_t>> blocks;   // blocks[i]: segs[i]'s capture
  std::array<uint64_t, kNumRoots> roots{};     // roots snapshot at capture

  // Indexed by main segment (sized at the first capture).
  std::vector<uint8_t> phase;
  std::vector<uint8_t> stolen;
  std::vector<uint32_t> seg_slot;              // segment -> index into segs
  std::vector<std::vector<uint8_t>> staging;   // capture-epoch image if stolen

  // Sharded flush work: shard_slots[sh] holds indices into segs for the
  // segments owned by shard sh (= seg % commit_shards). shard_cursor is
  // the per-shard work-sharing claim cursor; shard_left counts entries
  // whose flush pass has not completed — the participant that drops it to
  // zero performs the shard-local commit.
  std::vector<std::vector<uint32_t>> shard_slots;
  std::unique_ptr<std::atomic<size_t>[]> shard_cursor;
  std::unique_ptr<std::atomic<size_t>[]> shard_left;

  std::atomic<uint32_t> arrivals{0};   // participant index (shard affinity)
  std::atomic<uint32_t> finishers{0};  // participants done with flushing
  // Flush critical path: per-shard CPU time spent flushing this window's
  // captured blocks (write-hook steals included). The tail max-reduces it
  // into stats async_flush_crit_ns — thread-CPU time per shard, not wall
  // time, so the sharded pipeline's parallel efficiency is measurable
  // regardless of how many cores the host schedules the workers onto.
  std::unique_ptr<std::atomic<uint64_t>[]> shard_flush_ns;
};

class AsyncCommitPipeline {
 public:
  AsyncCommitPipeline(DefaultContainer* container, uint32_t workers);
  ~AsyncCommitPipeline();

  AsyncCommitPipeline(const AsyncCommitPipeline&) = delete;
  AsyncCommitPipeline& operator=(const AsyncCommitPipeline&) = delete;

  // Capture leader: window for `epoch` is populated and open; start
  // processing. Epochs are submitted in strictly increasing order.
  void submit(uint64_t epoch);

  // Blocks until no window is open. Cooperative mode (workers == 0)
  // services the open windows inline, oldest first, on the calling thread.
  void wait_idle();

  // Called by the container's pipeline tail after window `epoch` is fully
  // released (commit + finalize done). Windows close in FIFO order.
  void note_closed(uint64_t epoch);

  // FIFO join helper: blocks until every epoch <= `epoch` has closed.
  // Worker mode only — cooperative servicing is FIFO by construction and
  // asserts instead of waiting.
  void wait_closed_at_least(uint64_t epoch);

  // Makes progress on the oldest open window and returns: cooperative mode
  // services it to completion inline; worker mode blocks until some window
  // closes. Used by capture backpressure and by the write hook when a
  // store hits a segment still held by more than one window.
  void help_drain_oldest();

  uint32_t workers() const { return workers_n_; }

 private:
  void worker_loop();

  DefaultContainer* c_;
  uint32_t workers_n_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;    // workers: a window was submitted
  std::condition_variable cv_closed_;  // waiters: some window closed
  uint64_t first_epoch_ = 0;   // epoch of submission #0 (0 = none yet)
  uint64_t submitted_ = 0;     // windows submitted over the lifetime
  uint64_t closed_ = 0;        // windows closed over the lifetime
  bool shutdown_ = false;

  std::mutex service_mu_;  // cooperative mode: one servicer at a time
};

}  // namespace crpm
