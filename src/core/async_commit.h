// Background commit pipeline for concurrent checkpointing
// (CrpmOptions::async_checkpoint; DESIGN.md §10).
//
// In async mode crpm_checkpoint() runs only a short stop-the-world
// *capture* phase: it snapshots the dirty segment set, each captured
// segment's dirty-block list and the working roots into an AsyncWindow,
// stages the next seg_state array in place, hands the epoch to the sink,
// and returns. The pipeline then drives the window to the commit point
// while application threads keep mutating the main region:
//
//   flush     per captured segment (under its per-segment lock): flush
//             the captured blocks of the main region and fence
//             ("async.flush"). The write hook *steals* this step for any
//             captured segment it touches first ("async.steal"), and also
//             snapshots the segment's capture-epoch image into DRAM
//             before its first post-capture store lands.
//   stage     flush the staged seg_state array and the captured roots
//             into the inactive metadata copy ("async.stage").
//   commit    persist the committed_epoch bump ("async.commit") — the
//             atomic commit point.
//   finalize  per stolen segment: rebuild its backup from the DRAM image
//             snapshot and flip it to SS_Backup ("async.final"); then
//             release every captured segment from the window.
//
// With async_workers >= 1 the stages run on a pool of background
// threads (the flush stage is work-shared over a cursor; the last
// worker to finish runs the single-threaded tail). With async_workers
// == 0 the pipeline runs *cooperatively*: the same code executes inline
// on application threads, inside wait_committed() and inside the next
// capture's backpressure wait. Cooperative mode keeps the
// persistence-event stream a deterministic function of the workload,
// which the crash-matrix harness (src/chaos, scenario "core-async")
// depends on — CrashSimDevice is single-threaded, so simulated-crash
// tests must use cooperative mode.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/layout.h"

namespace crpm {

class DefaultContainer;

// One captured-but-uncommitted epoch. Owned by the container; written by
// the capture leader while the world is stopped, then processed by the
// pipeline. Per-segment fields (phase, stolen, staging, seg_slot) are
// guarded by that segment's DirtyTracker lock once the window is open.
struct AsyncWindow {
  enum Phase : uint8_t {
    kIdle = 0,     // not captured by the open window (or released)
    kPending = 1,  // captured; blocks not yet flushed
    kFlushed = 2,  // captured; blocks durable, commit still pending
  };

  std::atomic<bool> open{false};
  uint64_t epoch = 0;
  std::vector<uint64_t> segs;                  // captured segments, ascending
  std::vector<std::vector<uint64_t>> blocks;   // blocks[i]: segs[i]'s capture
  std::array<uint64_t, kNumRoots> roots{};     // roots snapshot at capture

  // Indexed by main segment (sized at the first capture).
  std::vector<uint8_t> phase;
  std::vector<uint8_t> stolen;
  std::vector<uint32_t> seg_slot;              // segment -> index into segs
  std::vector<std::vector<uint8_t>> staging;   // capture-epoch image if stolen

  std::atomic<size_t> cursor{0};       // flush-stage work sharing
  std::atomic<uint32_t> finishers{0};  // participants done with flushing
};

class AsyncCommitPipeline {
 public:
  AsyncCommitPipeline(DefaultContainer* container, uint32_t workers);
  ~AsyncCommitPipeline();

  AsyncCommitPipeline(const AsyncCommitPipeline&) = delete;
  AsyncCommitPipeline& operator=(const AsyncCommitPipeline&) = delete;

  // Capture leader: the window is populated and open; start processing.
  void submit();

  // Blocks until no window is open. Cooperative mode (workers == 0)
  // services the window inline on the calling thread instead.
  void wait_idle();

  // Called by the last pipeline participant once the window is released.
  void mark_closed();

  uint32_t workers() const { return workers_n_; }

 private:
  void worker_loop();

  DefaultContainer* c_;
  uint32_t workers_n_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;  // workers: a window was submitted
  std::condition_variable cv_idle_;  // waiters: the window closed
  uint64_t gen_ = 0;                 // bumped per submitted window
  bool window_open_ = false;
  bool shutdown_ = false;

  std::mutex service_mu_;  // cooperative mode: one servicer at a time
};

}  // namespace crpm
