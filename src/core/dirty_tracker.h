// DRAM-side dirty tracking (Section 3.4.1).
//
// dirty_blocks: one bit per 256 B block of the main region. Set by the
//   instrumented write hook; NOT cleared at checkpoint — a set bit means
//   "this block may differ between the main segment and its paired backup",
//   which is exactly the set of blocks the next copy-on-write must move.
//   Bits are cleared only after a successful copy-on-write (Figure 6, l.15).
//
// dirty_segments: one bit per segment, meaning "this segment was CoW'd (or
//   first-touched) during the current epoch"; consulted on the hook fast
//   path and cleared when the epoch commits (Figure 6, l.42).
//
// Per-segment spinlocks serialize concurrent copy-on-writes (Section 3.4.4).
#pragma once

#include <memory>
#include <vector>

#include "core/layout.h"
#include "util/bitmap.h"
#include "util/sync.h"

namespace crpm {

class DirtyTracker {
 public:
  explicit DirtyTracker(const Geometry& geo)
      : geo_(geo),
        dirty_blocks_(geo.nr_blocks()),
        dirty_segments_(geo.nr_main_segs()),
        seg_locks_(geo.nr_main_segs()) {}

  AtomicBitmap& dirty_blocks() { return dirty_blocks_; }
  AtomicBitmap& dirty_segments() { return dirty_segments_; }
  SpinLock& segment_lock(uint64_t seg) { return seg_locks_[seg]; }

  bool segment_dirty(uint64_t seg) const { return dirty_segments_.test(seg); }
  bool block_dirty(uint64_t block) const { return dirty_blocks_.test(block); }

  // Clears the dirty-block bits of one segment (after its CoW completes).
  void clear_segment_blocks(uint64_t seg) {
    dirty_blocks_.clear_range(geo_.first_block_of_segment(seg),
                              geo_.blocks_per_segment());
  }

  // Dirty blocks within one segment.
  uint64_t dirty_blocks_in_segment(uint64_t seg) const {
    return dirty_blocks_.count_range(geo_.first_block_of_segment(seg),
                                     geo_.blocks_per_segment());
  }

  // Total bytes of dirty blocks inside dirty segments (drives the
  // clwb-vs-wbinvd decision at checkpoint).
  uint64_t dirty_bytes_in_dirty_segments() const {
    uint64_t blocks = 0;
    dirty_segments_.for_each_set([&](size_t seg) {
      blocks += dirty_blocks_in_segment(seg);
    });
    return blocks * geo_.block_size();
  }

  // DRAM footprint of the dirty block bitmap (reported in Section 5.6).
  uint64_t bitmap_bytes() const { return (geo_.nr_blocks() + 7) / 8; }

 private:
  Geometry geo_;
  AtomicBitmap dirty_blocks_;
  AtomicBitmap dirty_segments_;
  std::vector<SpinLock> seg_locks_;
};

}  // namespace crpm
