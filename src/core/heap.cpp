#include "core/heap.h"

#include <cstring>
#include <mutex>

#include "util/logging.h"

namespace crpm {

namespace {
constexpr uint64_t kHeapMagic = 0x6372706d68656170ull;  // "crpmheap"
constexpr uint64_t kSmallStep = 16;
constexpr uint64_t kSmallMax = 256;   // classes 0..15: 16,32,...,256
constexpr uint64_t kLargeMin = 512;   // classes 16..: 512,1024,... (pow2)
}  // namespace

struct Heap::HeapHeader {
  uint64_t magic;
  uint64_t capacity;
  uint64_t bump;        // offset of the next never-allocated byte
  uint64_t allocated;   // live bytes (for accounting)
  uint64_t free_heads[kNumClasses];  // 0 = empty list
};

Heap::HeapHeader* Heap::header() {
  return reinterpret_cast<HeapHeader*>(ctr_.data());
}
const Heap::HeapHeader* Heap::header() const {
  return reinterpret_cast<const HeapHeader*>(
      const_cast<Heap*>(this)->ctr_.data());
}

Heap::Heap(Container& ctr) : ctr_(ctr) {
  HeapHeader* h = header();
  if (ctr_.was_fresh() || h->magic != kHeapMagic) {
    format();
  } else {
    CRPM_CHECK(h->capacity == ctr_.capacity(),
               "heap capacity mismatch: %llu vs container %llu",
               (unsigned long long)h->capacity,
               (unsigned long long)ctr_.capacity());
  }
}

void Heap::format() {
  HeapHeader* h = header();
  ctr_.annotate(h, sizeof(HeapHeader));
  std::memset(h, 0, sizeof(HeapHeader));
  h->magic = kHeapMagic;
  h->capacity = ctr_.capacity();
  h->bump = (sizeof(HeapHeader) + 63) & ~uint64_t{63};
  h->allocated = 0;
}

uint32_t Heap::class_of(size_t size, size_t* rounded) {
  if (size == 0) size = 1;
  if (size <= kSmallMax) {
    size_t r = (size + kSmallStep - 1) / kSmallStep * kSmallStep;
    *rounded = r;
    return static_cast<uint32_t>(r / kSmallStep - 1);
  }
  uint64_t r = kLargeMin;
  uint32_t c = 16;
  while (r < size) {
    r <<= 1;
    ++c;
    CRPM_CHECK(c < kNumClasses, "allocation of %zu bytes exceeds heap limit",
               size);
  }
  *rounded = r;
  return c;
}

void* Heap::allocate(size_t size) {
  size_t rounded = 0;
  uint32_t c = class_of(size, &rounded);
  std::lock_guard<SpinLock> lk(lock_);
  HeapHeader* h = header();

  uint64_t off = h->free_heads[c];
  if (off != 0) {
    // Pop from the free list. The next-pointer lives in the object itself.
    uint64_t* obj = static_cast<uint64_t*>(ctr_.from_offset(off));
    uint64_t next = *obj;
    ctr_.annotate(&h->free_heads[c], sizeof(uint64_t));
    h->free_heads[c] = next;
  } else {
    CRPM_CHECK(h->bump + rounded <= h->capacity,
               "container out of memory: capacity=%llu bump=%llu need=%zu",
               (unsigned long long)h->capacity, (unsigned long long)h->bump,
               rounded);
    off = h->bump;
    ctr_.annotate(&h->bump, sizeof(uint64_t));
    h->bump += rounded;
  }
  ctr_.annotate(&h->allocated, sizeof(uint64_t));
  h->allocated += rounded;
  return ctr_.from_offset(off);
}

void Heap::deallocate(void* p, size_t size) {
  if (p == nullptr) return;
  size_t rounded = 0;
  uint32_t c = class_of(size, &rounded);
  std::lock_guard<SpinLock> lk(lock_);
  HeapHeader* h = header();
  uint64_t off = ctr_.to_offset(p);
  CRPM_CHECK(off >= sizeof(HeapHeader) && off + rounded <= h->capacity,
             "deallocate of foreign pointer (offset %llu)",
             (unsigned long long)off);
  auto* obj = static_cast<uint64_t*>(p);
  ctr_.annotate(obj, sizeof(uint64_t));
  *obj = h->free_heads[c];
  ctr_.annotate(&h->free_heads[c], sizeof(uint64_t));
  h->free_heads[c] = off;
  ctr_.annotate(&h->allocated, sizeof(uint64_t));
  h->allocated -= rounded;
}

uint64_t Heap::bytes_in_use() const { return header()->allocated; }
uint64_t Heap::bytes_total() const { return header()->capacity; }

}  // namespace crpm
