#include "core/crpm_stats.h"

#include <sstream>

namespace crpm {

CrpmStatsSnapshot CrpmStatsSnapshot::operator-(
    const CrpmStatsSnapshot& rhs) const {
  CrpmStatsSnapshot d;
  d.epochs = epochs - rhs.epochs;
  d.cow_count = cow_count - rhs.cow_count;
  d.cow_full_copies = cow_full_copies - rhs.cow_full_copies;
  d.cow_blocks_copied = cow_blocks_copied - rhs.cow_blocks_copied;
  d.checkpoint_bytes = checkpoint_bytes - rhs.checkpoint_bytes;
  d.eager_cow_segments = eager_cow_segments - rhs.eager_cow_segments;
  d.trace_ns = trace_ns - rhs.trace_ns;
  d.checkpoint_ns = checkpoint_ns - rhs.checkpoint_ns;
  d.backup_steals = backup_steals - rhs.backup_steals;
  d.archive_epochs = archive_epochs - rhs.archive_epochs;
  d.archive_bytes = archive_bytes - rhs.archive_bytes;
  d.archive_queue_hwm = archive_queue_hwm;  // high-water mark, not a delta
  d.archive_stall_ns = archive_stall_ns - rhs.archive_stall_ns;
  d.archive_capture_ns = archive_capture_ns - rhs.archive_capture_ns;
  d.archive_compactions = archive_compactions - rhs.archive_compactions;
  return d;
}

std::string CrpmStatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "epochs=" << epochs << " cow=" << cow_count
     << " cow_full=" << cow_full_copies << " blocks=" << cow_blocks_copied
     << " ckpt_bytes=" << checkpoint_bytes
     << " eager=" << eager_cow_segments << " steals=" << backup_steals;
  if (archive_epochs != 0 || archive_bytes != 0) {
    os << " arch_epochs=" << archive_epochs
       << " arch_bytes=" << archive_bytes
       << " arch_qhwm=" << archive_queue_hwm
       << " arch_stall_ns=" << archive_stall_ns
       << " arch_compactions=" << archive_compactions;
  }
  return os.str();
}

CrpmStatsSnapshot CrpmStats::snapshot() const {
  CrpmStatsSnapshot s;
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.cow_count = cow_count_.load(std::memory_order_relaxed);
  s.cow_full_copies = cow_full_copies_.load(std::memory_order_relaxed);
  s.cow_blocks_copied = cow_blocks_copied_.load(std::memory_order_relaxed);
  s.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  s.eager_cow_segments =
      eager_cow_segments_.load(std::memory_order_relaxed);
  s.trace_ns = trace_ns_.load(std::memory_order_relaxed);
  s.checkpoint_ns = checkpoint_ns_.load(std::memory_order_relaxed);
  s.backup_steals = backup_steals_.load(std::memory_order_relaxed);
  s.archive_epochs = archive_epochs_.load(std::memory_order_relaxed);
  s.archive_bytes = archive_bytes_.load(std::memory_order_relaxed);
  s.archive_queue_hwm = archive_queue_hwm_.load(std::memory_order_relaxed);
  s.archive_stall_ns = archive_stall_ns_.load(std::memory_order_relaxed);
  s.archive_capture_ns =
      archive_capture_ns_.load(std::memory_order_relaxed);
  s.archive_compactions =
      archive_compactions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crpm
