#include "core/crpm_stats.h"

#include <sstream>

namespace crpm {

CrpmStatsSnapshot CrpmStatsSnapshot::operator-(
    const CrpmStatsSnapshot& rhs) const {
  CrpmStatsSnapshot d;
  d.epochs = epochs - rhs.epochs;
  d.cow_count = cow_count - rhs.cow_count;
  d.cow_full_copies = cow_full_copies - rhs.cow_full_copies;
  d.cow_blocks_copied = cow_blocks_copied - rhs.cow_blocks_copied;
  d.checkpoint_bytes = checkpoint_bytes - rhs.checkpoint_bytes;
  d.eager_cow_segments = eager_cow_segments - rhs.eager_cow_segments;
  d.trace_ns = trace_ns - rhs.trace_ns;
  d.checkpoint_ns = checkpoint_ns - rhs.checkpoint_ns;
  d.backup_steals = backup_steals - rhs.backup_steals;
  d.async_captures = async_captures - rhs.async_captures;
  d.async_capture_ns = async_capture_ns - rhs.async_capture_ns;
  d.async_steal_copies = async_steal_copies - rhs.async_steal_copies;
  d.async_inflight_hwm = async_inflight_hwm;  // high-water mark, not a delta
  d.async_flush_bytes = async_flush_bytes - rhs.async_flush_bytes;
  d.async_flush_crit_ns = async_flush_crit_ns - rhs.async_flush_crit_ns;
  d.async_backpressure_ns =
      async_backpressure_ns - rhs.async_backpressure_ns;
  d.archive_epochs = archive_epochs - rhs.archive_epochs;
  d.archive_bytes = archive_bytes - rhs.archive_bytes;
  d.archive_queue_hwm = archive_queue_hwm;  // high-water mark, not a delta
  d.archive_stall_ns = archive_stall_ns - rhs.archive_stall_ns;
  d.archive_capture_ns = archive_capture_ns - rhs.archive_capture_ns;
  d.archive_compactions = archive_compactions - rhs.archive_compactions;
  d.repl_frames_sent = repl_frames_sent - rhs.repl_frames_sent;
  d.repl_bytes_sent = repl_bytes_sent - rhs.repl_bytes_sent;
  d.repl_frames_acked = repl_frames_acked - rhs.repl_frames_acked;
  d.repl_retries = repl_retries - rhs.repl_retries;
  d.repl_frames_dropped = repl_frames_dropped - rhs.repl_frames_dropped;
  d.repl_frames_stored = repl_frames_stored - rhs.repl_frames_stored;
  d.repl_stall_ns = repl_stall_ns - rhs.repl_stall_ns;
  d.recovery_source = recovery_source;  // a state, not a counter
  d.scrub_passes = scrub_passes - rhs.scrub_passes;
  d.scrub_frames_checked = scrub_frames_checked - rhs.scrub_frames_checked;
  d.scrub_bytes_checked = scrub_bytes_checked - rhs.scrub_bytes_checked;
  d.scrub_errors = scrub_errors - rhs.scrub_errors;
  d.scrub_skipped = scrub_skipped - rhs.scrub_skipped;
  d.scrub_ns = scrub_ns - rhs.scrub_ns;
  return d;
}

std::string CrpmStatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "epochs=" << epochs << " cow=" << cow_count
     << " cow_full=" << cow_full_copies << " blocks=" << cow_blocks_copied
     << " ckpt_bytes=" << checkpoint_bytes
     << " eager=" << eager_cow_segments << " steals=" << backup_steals;
  if (async_captures != 0) {
    os << " async_captures=" << async_captures
       << " async_capture_ns=" << async_capture_ns
       << " async_steal_copies=" << async_steal_copies
       << " async_inflight_hwm=" << async_inflight_hwm
       << " async_flush_bytes=" << async_flush_bytes
       << " async_flush_crit_ns=" << async_flush_crit_ns
       << " async_backpressure_ns=" << async_backpressure_ns;
  }
  if (archive_epochs != 0 || archive_bytes != 0) {
    os << " arch_epochs=" << archive_epochs
       << " arch_bytes=" << archive_bytes
       << " arch_qhwm=" << archive_queue_hwm
       << " arch_stall_ns=" << archive_stall_ns
       << " arch_compactions=" << archive_compactions;
  }
  if (repl_frames_sent != 0 || repl_frames_stored != 0 ||
      recovery_source != kRecoveryNone) {
    os << " repl_sent=" << repl_frames_sent
       << " repl_bytes=" << repl_bytes_sent
       << " repl_acked=" << repl_frames_acked
       << " repl_retries=" << repl_retries
       << " repl_dropped=" << repl_frames_dropped
       << " repl_stored=" << repl_frames_stored
       << " repl_stall_ns=" << repl_stall_ns
       << " recovery_source="
       << (recovery_source == kRecoveryPeer
               ? "peer"
               : recovery_source == kRecoveryLocal ? "local" : "none");
  }
  if (scrub_passes != 0) {
    os << " scrub_passes=" << scrub_passes
       << " scrub_frames=" << scrub_frames_checked
       << " scrub_bytes=" << scrub_bytes_checked
       << " scrub_errors=" << scrub_errors
       << " scrub_skipped=" << scrub_skipped
       << " scrub_ns=" << scrub_ns;
  }
  return os.str();
}

CrpmStatsSnapshot CrpmStats::snapshot() const {
  CrpmStatsSnapshot s;
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.cow_count = cow_count_.load(std::memory_order_relaxed);
  s.cow_full_copies = cow_full_copies_.load(std::memory_order_relaxed);
  s.cow_blocks_copied = cow_blocks_copied_.load(std::memory_order_relaxed);
  s.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  s.eager_cow_segments =
      eager_cow_segments_.load(std::memory_order_relaxed);
  s.trace_ns = trace_ns_.load(std::memory_order_relaxed);
  s.checkpoint_ns = checkpoint_ns_.load(std::memory_order_relaxed);
  s.backup_steals = backup_steals_.load(std::memory_order_relaxed);
  s.async_captures = async_captures_.load(std::memory_order_relaxed);
  s.async_capture_ns = async_capture_ns_.load(std::memory_order_relaxed);
  s.async_steal_copies =
      async_steal_copies_.load(std::memory_order_relaxed);
  s.async_inflight_hwm =
      async_inflight_hwm_.load(std::memory_order_relaxed);
  s.async_flush_bytes = async_flush_bytes_.load(std::memory_order_relaxed);
  s.async_flush_crit_ns =
      async_flush_crit_ns_.load(std::memory_order_relaxed);
  s.async_backpressure_ns =
      async_backpressure_ns_.load(std::memory_order_relaxed);
  s.archive_epochs = archive_epochs_.load(std::memory_order_relaxed);
  s.archive_bytes = archive_bytes_.load(std::memory_order_relaxed);
  s.archive_queue_hwm = archive_queue_hwm_.load(std::memory_order_relaxed);
  s.archive_stall_ns = archive_stall_ns_.load(std::memory_order_relaxed);
  s.archive_capture_ns =
      archive_capture_ns_.load(std::memory_order_relaxed);
  s.archive_compactions =
      archive_compactions_.load(std::memory_order_relaxed);
  s.repl_frames_sent = repl_frames_sent_.load(std::memory_order_relaxed);
  s.repl_bytes_sent = repl_bytes_sent_.load(std::memory_order_relaxed);
  s.repl_frames_acked = repl_frames_acked_.load(std::memory_order_relaxed);
  s.repl_retries = repl_retries_.load(std::memory_order_relaxed);
  s.repl_frames_dropped =
      repl_frames_dropped_.load(std::memory_order_relaxed);
  s.repl_frames_stored =
      repl_frames_stored_.load(std::memory_order_relaxed);
  s.repl_stall_ns = repl_stall_ns_.load(std::memory_order_relaxed);
  s.recovery_source = recovery_source_.load(std::memory_order_relaxed);
  s.scrub_passes = scrub_passes_.load(std::memory_order_relaxed);
  s.scrub_frames_checked =
      scrub_frames_checked_.load(std::memory_order_relaxed);
  s.scrub_bytes_checked =
      scrub_bytes_checked_.load(std::memory_order_relaxed);
  s.scrub_errors = scrub_errors_.load(std::memory_order_relaxed);
  s.scrub_skipped = scrub_skipped_.load(std::memory_order_relaxed);
  s.scrub_ns = scrub_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crpm
