// crpm::p<T> — annotated persistent field wrapper.
//
// Stand-in for the paper's compiler instrumentation on user-defined structs:
// a p<T> field routes every assignment through the global write hook, so a
// struct whose mutable fields are p<T> needs no manual annotate() calls.
// Reads are direct (loads are never instrumented). T must be trivially
// copyable — persistent state cannot own DRAM resources.
//
//   struct Account {
//     crpm::p<uint64_t> balance;
//     crpm::p<uint32_t> flags;
//   };
//   acct->balance = acct->balance + 100;   // hooks automatically
#pragma once

#include <type_traits>
#include <utility>

#include "core/registry.h"

namespace crpm {

template <typename T>
class p {
  static_assert(std::is_trivially_copyable_v<T>,
                "persistent fields must be trivially copyable");

 public:
  p() = default;
  p(const T& v) : value_(v) {}  // NOLINT(google-explicit-constructor)

  p& operator=(const T& v) {
    crpm_annotate(&value_, sizeof(T));
    value_ = v;
    return *this;
  }

  p& operator=(const p& other) {
    crpm_annotate(&value_, sizeof(T));
    value_ = other.value_;
    return *this;
  }

  operator const T&() const { return value_; }  // NOLINT
  const T& get() const { return value_; }

  // Exposes mutable internals for bulk operations; the caller must
  // annotate the range itself.
  T& unsafe_ref() { return value_; }

  p& operator+=(const T& v) { return *this = value_ + v; }
  p& operator-=(const T& v) { return *this = value_ - v; }
  p& operator++() { return *this = value_ + 1; }
  p& operator--() { return *this = value_ - 1; }

 private:
  T value_;
};

}  // namespace crpm
