// Per-epoch delta export from the checkpoint protocol.
//
// The checkpoint protocol already computes, per epoch, exactly which 256 B
// blocks of the working state changed (the DRAM dirty-block bitmap of
// Section 3.4.1). Beyond driving the differential copy, that bitmap is a
// ready-made delta stream: an observer that receives (block index, payload)
// for every committed epoch can rebuild the working state of any epoch by
// replaying deltas in order. The snapshot subsystem (src/snapshot) consumes
// this to keep a multi-epoch archive off-device; the container itself
// retains at most one epoch of history (retains_previous_epoch()).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/layout.h"

namespace crpm {

// One committed epoch's delta. `blocks` lists the indices (ascending) of
// every block modified during the epoch; the payload of block b starts at
// data + b * block_size and holds the block's committed value. `data`
// references the container's live working state: it is stable from
// on_epoch_commit() until the container calls wait_captured() at the end
// of the same checkpoint, and sinks must have copied everything they keep
// by the time wait_captured() returns.
//
// Completeness invariant: replaying, onto an all-zero image, the blocks of
// every delta from the container's first commit through epoch e reproduces
// the working state at epoch e byte for byte. (Deltas may be supersets of
// the blocks actually written in an epoch; extra blocks carry their current
// committed value, which replay makes idempotent.)
struct EpochDelta {
  uint64_t epoch = 0;        // the epoch being committed
  uint64_t block_size = 0;
  uint64_t region_size = 0;  // bytes of working state (main region)
  const uint8_t* data = nullptr;
  std::vector<uint64_t> blocks;
  std::array<uint64_t, kNumRoots> roots{};  // committed root array
};

class EpochSink {
 public:
  virtual ~EpochSink() = default;

  // Invoked by the committing leader inside crpm_checkpoint(), once the
  // epoch's dirty set and values are final (all collective threads are
  // stopped in the checkpoint, none mutating the working state). The call
  // lands *before* the flush phase and commit point, so a background
  // consumer can copy the still-stable payload concurrently with the rest
  // of the checkpoint; the leader synchronizes with wait_captured() before
  // releasing the application threads. The flip side: if the process dies
  // between this call and the commit point, the epoch was exported but
  // never committed — durable consumers must reconcile against the
  // container's committed epoch when they re-attach (ArchiveWriter
  // truncates such frames). Runs on the stop-the-world path: do nothing
  // here beyond recording the delta and waking a background consumer.
  virtual void on_epoch_commit(EpochDelta&& delta) = 0;

  // Invoked by the committing leader at the end of the same checkpoint,
  // just before the application threads resume (and may mutate the working
  // state the delta points into). Blocks until every pointer handed to
  // on_epoch_commit() is no longer needed.
  virtual void wait_captured() {}
};

}  // namespace crpm
