// Container configuration.
//
// The defaults mirror the paper's platform: 2 MB segments (copy-on-write
// granularity), 256 B blocks (data-copy granularity), a 32 MB LLC threshold
// for choosing clwb-per-block vs. wbinvd during checkpointing, and eager
// copy-on-write of all dirty segments inside the checkpoint when few
// segments are dirty. Figure 10 sweeps segment_size and block_size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace crpm {

// Hard caps on the multi-window knobs: each in-flight epoch needs its own
// persistent seg_state/roots replica, and each commit shard its own
// persistent progress word, so both scale the metadata footprint.
inline constexpr uint32_t kMaxInflightEpochs = 8;
inline constexpr uint32_t kMaxCommitShards = 64;

// Cap on the restore worker pool (snapshot::restore / ReplicaStore chain
// apply): the apply shards by segment, so more workers than commit shards
// makes sense, but an unbounded pool only adds scheduling noise.
inline constexpr uint32_t kMaxRestoreWorkers = 64;

struct CrpmOptions {
  // Copy-on-write granularity. Must be a power of two and a multiple of
  // block_size. Paper default: 2 MB (Figure 10a sweeps 512 B – 32 MB).
  uint64_t segment_size = 2 * 1024 * 1024;

  // Data-copy granularity. Must be a power of two and a multiple of the
  // cache line size. Paper default: 256 B (Figure 10b sweeps 64 B – 16 KB).
  uint64_t block_size = 256;

  // Size of the main region (the application-visible heap), rounded up to a
  // whole number of segments.
  uint64_t main_region_size = 64 * 1024 * 1024;

  // Backup segments as a fraction of main segments. 1.0 guarantees a paired
  // backup always exists; lower ratios exercise backup-segment recycling
  // ("a backup segment can be allocated if it is not used for saving the
  //  checkpoint state", Section 3.3).
  double backup_ratio = 1.0;

  // Checkpoint flushes dirty blocks with clwb unless their total size
  // exceeds this threshold, in which case a whole-cache writeback is used
  // instead (Section 3.4.2; 32 MB = LLC size on the paper's platform).
  uint64_t wbinvd_threshold = 32 * 1024 * 1024;

  // If at most this many segments are dirty at the end of an epoch, their
  // copy-on-write is executed inside the checkpoint with batched fences
  // (Section 3.4.2, last paragraph). 0 disables eager copy-on-write.
  uint64_t eager_cow_segments = 8;

  // Number of application threads participating in the collective
  // crpm_checkpoint() call.
  uint32_t thread_count = 1;

  // Buffered mode (Section 3.5): the working state lives in DRAM and is
  // replicated differentially into NVM at each checkpoint.
  bool buffered = false;

  // --- concurrent background checkpointing ------------------------------
  // Splits crpm_checkpoint() into a short stop-the-world *capture* phase
  // (snapshot the dirty-block sets, stage the next seg_state/roots arrays,
  // hand the epoch to the sink) and a background *commit pipeline* that
  // performs the block flushes and the committed_epoch bump while the
  // application keeps mutating the main region. Correctness comes from
  // write-hook cooperation: the first write to a segment whose captured
  // copy is still pending steals that segment's flush (and snapshots its
  // capture-epoch image) under the per-segment lock before dirtying it.
  // Default-mode containers only; rejected with buffered = true.

  // Selects async mode. checkpoint() then returns once capture ends;
  // wait_committed() completes the contract.
  bool async_checkpoint = false;

  // Background commit workers. 0 = cooperative mode: the pipeline runs
  // inline on application threads (inside wait_committed() and the next
  // checkpoint()'s backpressure wait), which keeps the persistence-event
  // stream deterministic — the crash-matrix harness depends on this.
  uint32_t async_workers = 1;

  // Captured-but-uncommitted epochs tolerated before checkpoint() blocks
  // in its capture phase (backpressure). The persistent seg_state/roots
  // metadata is replicated max_inflight_epochs + 1 ways so each in-flight
  // window stages into its own copy (epoch E uses copy E mod replicas);
  // windows join strictly FIFO at the coordinated commit. Honored in async
  // mode only — sync and buffered containers are structurally
  // double-buffered and clamp to 1. Capped at kMaxInflightEpochs.
  uint32_t max_inflight_epochs = 1;

  // Epoch shard domains for the async commit pipeline: segments partition
  // by seg % commit_shards, workers sweep their own shard's flush work
  // first and then steal from others, and each shard durably records its
  // per-epoch flush progress in its own persistent word ("shard.commit").
  // The coordinated commit joins the shards with an in-process min-reduce
  // over those records (SimComm::allreduce_min semantics) before the
  // committed_epoch bump. 1 = unsharded. Async mode only; capped at
  // kMaxCommitShards.
  uint32_t commit_shards = 1;

  // --- multi-epoch snapshot archive (src/snapshot) ---------------------
  // The core library only carries these; snapshot::attach_if_configured()
  // reads them to start a background archive writer for the container.

  // Append-only archive file receiving every committed epoch's delta.
  // Empty disables archiving.
  std::string archive_path;

  // Fold the delta chain into a full base snapshot (and truncate the
  // archive) after this many delta frames. 0 disables compaction, keeping
  // every epoch since the archive began restorable.
  uint32_t archive_compact_every = 0;

  // Committed-but-unarchived epochs buffered in DRAM before the committing
  // thread blocks on the background writer (backpressure).
  uint32_t archive_queue_depth = 8;

  // fdatasync the archive after each appended batch (a batch is one epoch
  // unless archive_group_epochs raises it). Off, durability of archived
  // epochs lags the OS page cache.
  bool archive_fsync = true;

  // Per-frame codec negotiated by the tiering layer (src/tier): "" or
  // "none" appends plain frames; "lzb" tries LZ4-style compression and
  // keeps whichever form is smaller.
  std::string archive_codec;

  // Group commit: epochs batched into one device write + fdatasync. 0/1
  // keeps the one-batch-per-epoch behavior.
  uint32_t archive_group_epochs = 1;

  // Bound on how long a partial batch waits for more epochs before it is
  // flushed anyway (durable-ack latency bound for group commit).
  uint64_t archive_flush_deadline_us = 2000;

  // Writeback engine draining the batch ring: "sync" (default), "threads",
  // "uring", or "auto" (uring when available, else threads).
  std::string archive_writeback;

  // Store a compressed base frame under <archive>.cold/ at every
  // compaction fold, keeping folded-away epochs restorable.
  bool archive_cold = false;

  // --- recovery read path (snapshot::restore) ---------------------------

  // Worker threads sharding the archive record apply during restore.
  // Segments partition across workers (seg % workers), each worker sweeps
  // its own shard's records first and then steals from lagging shards —
  // the commit_shards work-stealing discipline applied to the read path.
  // Every worker re-verifies the CRC of each record it applies, so a
  // corrupt frame is detected by whichever shard owns the damage. 0 or 1
  // keeps the single-threaded apply. Capped at kMaxRestoreWorkers. The
  // apply runs on a DRAM image before the restored container is built, so
  // the device persistence-event stream stays deterministic regardless.
  uint32_t restore_workers = 0;

  // --- checkpoint engine selection (src/engines) -----------------------
  // Which checkpoint protocol backs the region. The core library ignores
  // this field (Container implements "foca"); engines::open_engine()
  // dispatches on it:
  //   "foca"     dual-replica segment CoW (Container; the paper's design)
  //   "undolog"  per-block undo logging (src/baselines, 2 fences/entry)
  //   "pagecow"  page-granularity journal + shadow (src/baselines)
  //   "adaptive" per-segment hybrid: dense segments checkpoint FOCA-style
  //              (one pre-image, then free writes), sparse segments log
  //              per block; strategy chosen from observed write density
  //              with hysteresis (src/engines/adaptive.h)
  std::string engine = "foca";

  // Adaptive engine tuning. A segment is *dense* when the fraction of its
  // blocks dirtied in an epoch reaches adaptive_dense_threshold — the
  // engine then switches it to COW mode, mid-epoch if the threshold is
  // crossed while the epoch is still open. It demotes a COW segment back
  // to LOG mode only after its density EWMA has stayed at or below
  // adaptive_sparse_threshold for adaptive_hysteresis_epochs consecutive
  // epochs, so alternating workloads don't thrash the strategy.
  double adaptive_dense_threshold = 0.5;
  double adaptive_sparse_threshold = 0.2;
  uint32_t adaptive_hysteresis_epochs = 2;

  // --- test-only fault injection ---------------------------------------

  // Deliberately persists the seg_state flip BEFORE the copy-on-write data
  // copy is fenced, breaking the Figure 6 ordering: a crash between the two
  // makes recovery restore the main segment from a backup that never
  // received the checkpoint data. Exists solely so the crash-matrix
  // harness (src/chaos) can prove it detects ordering bugs; never enable
  // outside tests.
  bool test_fault_flip_before_copy = false;

  // Async-mode ordering bug: the write-hook steal skips the captured-block
  // flush and image snapshot, so the background pipeline commits an epoch
  // whose "captured" values were already overwritten by the next epoch's
  // stores. Exists solely so the core-async crash-matrix scenario can
  // prove it detects async ordering bugs; never enable outside tests.
  bool test_fault_skip_steal_copy = false;

  // Adaptive-engine ordering bug: a mid-epoch LOG->COW strategy switch
  // appends the segment pre-image but skips flushing its payload before
  // un-logged writes to the segment proceed. A crash then recovers from a
  // torn pre-image and rolls the segment back to garbage. Exists solely so
  // the core-adaptive crash-matrix scenario can prove it detects
  // strategy-transition ordering bugs; never enable outside tests.
  bool test_fault_adaptive_skip_transition_flush = false;

  // Returns a copy with sizes validated and rounded; aborts on nonsensical
  // combinations (block > segment, non-power-of-two sizes, ...).
  CrpmOptions validated() const;
};

}  // namespace crpm
