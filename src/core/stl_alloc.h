// CrpmAllocator — the STL allocator adapter of Section 5.2.1.
//
// The paper enables recoverable STL data structures by passing a wrapper
// allocator as a template parameter ("a single line of code change"); the
// instantiated container code is then instrumented by the compiler pass.
// Without the pass, this adapter still places all element storage inside a
// crpm container (so it is checkpointed and recovered), but interior
// mutations made by the STL implementation itself are NOT traced — use it
// for containers whose elements you mutate through crpm::p<T> fields or
// explicit crpm_annotate() calls, or use the fully-instrumented
// crpm::PMap / PHashMap / PVector / PRing instead.
//
//   std::vector<double, crpm::CrpmAllocator<double>> v{
//       crpm::CrpmAllocator<double>(heap)};
#pragma once

#include <cstddef>

#include "core/heap.h"

namespace crpm {

template <typename T>
class CrpmAllocator {
 public:
  using value_type = T;

  explicit CrpmAllocator(Heap& heap) : heap_(&heap) {}

  template <typename U>
  CrpmAllocator(const CrpmAllocator<U>& other)  // NOLINT
      : heap_(other.heap()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(heap_->allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    heap_->deallocate(p, n * sizeof(T));
  }

  Heap* heap() const { return heap_; }

  bool operator==(const CrpmAllocator& other) const {
    return heap_ == other.heap_;
  }
  bool operator!=(const CrpmAllocator& other) const {
    return !(*this == other);
  }

 private:
  template <typename U>
  friend class CrpmAllocator;

  Heap* heap_;
};

}  // namespace crpm
