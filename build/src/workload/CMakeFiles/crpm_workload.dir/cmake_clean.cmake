file(REMOVE_RECURSE
  "CMakeFiles/crpm_workload.dir/kv.cpp.o"
  "CMakeFiles/crpm_workload.dir/kv.cpp.o.d"
  "CMakeFiles/crpm_workload.dir/runner.cpp.o"
  "CMakeFiles/crpm_workload.dir/runner.cpp.o.d"
  "libcrpm_workload.a"
  "libcrpm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
