file(REMOVE_RECURSE
  "libcrpm_workload.a"
)
