# Empty dependencies file for crpm_workload.
# This may be replaced when dependencies are built.
