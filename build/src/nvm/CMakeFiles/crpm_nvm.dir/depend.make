# Empty dependencies file for crpm_nvm.
# This may be replaced when dependencies are built.
