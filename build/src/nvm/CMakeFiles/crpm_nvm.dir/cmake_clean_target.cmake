file(REMOVE_RECURSE
  "libcrpm_nvm.a"
)
