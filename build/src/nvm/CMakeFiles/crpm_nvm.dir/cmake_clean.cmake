file(REMOVE_RECURSE
  "CMakeFiles/crpm_nvm.dir/cost_model.cpp.o"
  "CMakeFiles/crpm_nvm.dir/cost_model.cpp.o.d"
  "CMakeFiles/crpm_nvm.dir/crash_sim.cpp.o"
  "CMakeFiles/crpm_nvm.dir/crash_sim.cpp.o.d"
  "CMakeFiles/crpm_nvm.dir/device.cpp.o"
  "CMakeFiles/crpm_nvm.dir/device.cpp.o.d"
  "CMakeFiles/crpm_nvm.dir/stats.cpp.o"
  "CMakeFiles/crpm_nvm.dir/stats.cpp.o.d"
  "libcrpm_nvm.a"
  "libcrpm_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
