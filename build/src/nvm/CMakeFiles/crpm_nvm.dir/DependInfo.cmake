
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/cost_model.cpp" "src/nvm/CMakeFiles/crpm_nvm.dir/cost_model.cpp.o" "gcc" "src/nvm/CMakeFiles/crpm_nvm.dir/cost_model.cpp.o.d"
  "/root/repo/src/nvm/crash_sim.cpp" "src/nvm/CMakeFiles/crpm_nvm.dir/crash_sim.cpp.o" "gcc" "src/nvm/CMakeFiles/crpm_nvm.dir/crash_sim.cpp.o.d"
  "/root/repo/src/nvm/device.cpp" "src/nvm/CMakeFiles/crpm_nvm.dir/device.cpp.o" "gcc" "src/nvm/CMakeFiles/crpm_nvm.dir/device.cpp.o.d"
  "/root/repo/src/nvm/stats.cpp" "src/nvm/CMakeFiles/crpm_nvm.dir/stats.cpp.o" "gcc" "src/nvm/CMakeFiles/crpm_nvm.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
