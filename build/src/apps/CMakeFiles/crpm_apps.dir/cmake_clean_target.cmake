file(REMOVE_RECURSE
  "libcrpm_apps.a"
)
