file(REMOVE_RECURSE
  "CMakeFiles/crpm_apps.dir/comd_proxy.cpp.o"
  "CMakeFiles/crpm_apps.dir/comd_proxy.cpp.o.d"
  "CMakeFiles/crpm_apps.dir/hpccg.cpp.o"
  "CMakeFiles/crpm_apps.dir/hpccg.cpp.o.d"
  "CMakeFiles/crpm_apps.dir/lulesh_proxy.cpp.o"
  "CMakeFiles/crpm_apps.dir/lulesh_proxy.cpp.o.d"
  "CMakeFiles/crpm_apps.dir/state_store.cpp.o"
  "CMakeFiles/crpm_apps.dir/state_store.cpp.o.d"
  "libcrpm_apps.a"
  "libcrpm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
