# Empty compiler generated dependencies file for crpm_apps.
# This may be replaced when dependencies are built.
