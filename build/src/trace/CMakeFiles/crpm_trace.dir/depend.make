# Empty dependencies file for crpm_trace.
# This may be replaced when dependencies are built.
