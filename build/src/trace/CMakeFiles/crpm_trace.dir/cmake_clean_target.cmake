file(REMOVE_RECURSE
  "libcrpm_trace.a"
)
