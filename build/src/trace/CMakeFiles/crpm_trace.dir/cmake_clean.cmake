file(REMOVE_RECURSE
  "CMakeFiles/crpm_trace.dir/page_tracer.cpp.o"
  "CMakeFiles/crpm_trace.dir/page_tracer.cpp.o.d"
  "libcrpm_trace.a"
  "libcrpm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
