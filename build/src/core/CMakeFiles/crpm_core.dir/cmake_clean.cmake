file(REMOVE_RECURSE
  "CMakeFiles/crpm_core.dir/container.cpp.o"
  "CMakeFiles/crpm_core.dir/container.cpp.o.d"
  "CMakeFiles/crpm_core.dir/crpm.cpp.o"
  "CMakeFiles/crpm_core.dir/crpm.cpp.o.d"
  "CMakeFiles/crpm_core.dir/crpm_stats.cpp.o"
  "CMakeFiles/crpm_core.dir/crpm_stats.cpp.o.d"
  "CMakeFiles/crpm_core.dir/heap.cpp.o"
  "CMakeFiles/crpm_core.dir/heap.cpp.o.d"
  "CMakeFiles/crpm_core.dir/layout.cpp.o"
  "CMakeFiles/crpm_core.dir/layout.cpp.o.d"
  "CMakeFiles/crpm_core.dir/registry.cpp.o"
  "CMakeFiles/crpm_core.dir/registry.cpp.o.d"
  "libcrpm_core.a"
  "libcrpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
