file(REMOVE_RECURSE
  "libcrpm_core.a"
)
