# Empty dependencies file for crpm_core.
# This may be replaced when dependencies are built.
