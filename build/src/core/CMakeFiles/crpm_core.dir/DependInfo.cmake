
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/container.cpp" "src/core/CMakeFiles/crpm_core.dir/container.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/container.cpp.o.d"
  "/root/repo/src/core/crpm.cpp" "src/core/CMakeFiles/crpm_core.dir/crpm.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/crpm.cpp.o.d"
  "/root/repo/src/core/crpm_stats.cpp" "src/core/CMakeFiles/crpm_core.dir/crpm_stats.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/crpm_stats.cpp.o.d"
  "/root/repo/src/core/heap.cpp" "src/core/CMakeFiles/crpm_core.dir/heap.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/heap.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/crpm_core.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/layout.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/crpm_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/crpm_core.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvm/CMakeFiles/crpm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
