# Empty compiler generated dependencies file for crpm_util.
# This may be replaced when dependencies are built.
