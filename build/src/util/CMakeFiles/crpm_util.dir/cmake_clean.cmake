file(REMOVE_RECURSE
  "CMakeFiles/crpm_util.dir/bitmap.cpp.o"
  "CMakeFiles/crpm_util.dir/bitmap.cpp.o.d"
  "CMakeFiles/crpm_util.dir/env.cpp.o"
  "CMakeFiles/crpm_util.dir/env.cpp.o.d"
  "CMakeFiles/crpm_util.dir/logging.cpp.o"
  "CMakeFiles/crpm_util.dir/logging.cpp.o.d"
  "CMakeFiles/crpm_util.dir/table.cpp.o"
  "CMakeFiles/crpm_util.dir/table.cpp.o.d"
  "CMakeFiles/crpm_util.dir/zipfian.cpp.o"
  "CMakeFiles/crpm_util.dir/zipfian.cpp.o.d"
  "libcrpm_util.a"
  "libcrpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
