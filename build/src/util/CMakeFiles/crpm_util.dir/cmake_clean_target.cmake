file(REMOVE_RECURSE
  "libcrpm_util.a"
)
