file(REMOVE_RECURSE
  "libcrpm_baselines.a"
)
