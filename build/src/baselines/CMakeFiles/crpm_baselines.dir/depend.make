# Empty dependencies file for crpm_baselines.
# This may be replaced when dependencies are built.
