file(REMOVE_RECURSE
  "CMakeFiles/crpm_baselines.dir/dali_map.cpp.o"
  "CMakeFiles/crpm_baselines.dir/dali_map.cpp.o.d"
  "CMakeFiles/crpm_baselines.dir/fti.cpp.o"
  "CMakeFiles/crpm_baselines.dir/fti.cpp.o.d"
  "CMakeFiles/crpm_baselines.dir/lmc.cpp.o"
  "CMakeFiles/crpm_baselines.dir/lmc.cpp.o.d"
  "CMakeFiles/crpm_baselines.dir/page_policy.cpp.o"
  "CMakeFiles/crpm_baselines.dir/page_policy.cpp.o.d"
  "CMakeFiles/crpm_baselines.dir/region_heap.cpp.o"
  "CMakeFiles/crpm_baselines.dir/region_heap.cpp.o.d"
  "CMakeFiles/crpm_baselines.dir/undolog.cpp.o"
  "CMakeFiles/crpm_baselines.dir/undolog.cpp.o.d"
  "libcrpm_baselines.a"
  "libcrpm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
