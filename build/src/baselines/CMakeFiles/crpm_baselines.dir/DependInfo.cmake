
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dali_map.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/dali_map.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/dali_map.cpp.o.d"
  "/root/repo/src/baselines/fti.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/fti.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/fti.cpp.o.d"
  "/root/repo/src/baselines/lmc.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/lmc.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/lmc.cpp.o.d"
  "/root/repo/src/baselines/page_policy.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/page_policy.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/page_policy.cpp.o.d"
  "/root/repo/src/baselines/region_heap.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/region_heap.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/region_heap.cpp.o.d"
  "/root/repo/src/baselines/undolog.cpp" "src/baselines/CMakeFiles/crpm_baselines.dir/undolog.cpp.o" "gcc" "src/baselines/CMakeFiles/crpm_baselines.dir/undolog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvm/CMakeFiles/crpm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crpm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
