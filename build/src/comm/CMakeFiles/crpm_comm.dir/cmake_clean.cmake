file(REMOVE_RECURSE
  "CMakeFiles/crpm_comm.dir/coordinated.cpp.o"
  "CMakeFiles/crpm_comm.dir/coordinated.cpp.o.d"
  "libcrpm_comm.a"
  "libcrpm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
