# Empty compiler generated dependencies file for crpm_comm.
# This may be replaced when dependencies are built.
