file(REMOVE_RECURSE
  "libcrpm_comm.a"
)
