# Empty dependencies file for crpm_inspect.
# This may be replaced when dependencies are built.
