file(REMOVE_RECURSE
  "CMakeFiles/crpm_inspect.dir/crpm_inspect.cpp.o"
  "CMakeFiles/crpm_inspect.dir/crpm_inspect.cpp.o.d"
  "crpm_inspect"
  "crpm_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpm_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
