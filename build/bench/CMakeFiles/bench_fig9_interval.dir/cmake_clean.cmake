file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_interval.dir/bench_fig9_interval.cpp.o"
  "CMakeFiles/bench_fig9_interval.dir/bench_fig9_interval.cpp.o.d"
  "bench_fig9_interval"
  "bench_fig9_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
