file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_segblock.dir/bench_fig10_segblock.cpp.o"
  "CMakeFiles/bench_fig10_segblock.dir/bench_fig10_segblock.cpp.o.d"
  "bench_fig10_segblock"
  "bench_fig10_segblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_segblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
