# Empty compiler generated dependencies file for bench_fig10_segblock.
# This may be replaced when dependencies are built.
