file(REMOVE_RECURSE
  "CMakeFiles/mpi_lulesh.dir/mpi_lulesh.cpp.o"
  "CMakeFiles/mpi_lulesh.dir/mpi_lulesh.cpp.o.d"
  "mpi_lulesh"
  "mpi_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
