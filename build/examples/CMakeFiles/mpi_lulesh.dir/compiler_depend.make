# Empty compiler generated dependencies file for mpi_lulesh.
# This may be replaced when dependencies are built.
