# Empty compiler generated dependencies file for heat_sim.
# This may be replaced when dependencies are built.
