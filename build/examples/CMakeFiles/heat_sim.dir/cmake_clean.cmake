file(REMOVE_RECURSE
  "CMakeFiles/heat_sim.dir/heat_sim.cpp.o"
  "CMakeFiles/heat_sim.dir/heat_sim.cpp.o.d"
  "heat_sim"
  "heat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
