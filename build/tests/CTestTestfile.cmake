# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/crash_injection_test[1]_include.cmake")
include("/root/repo/build/tests/containers_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_crash_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_crash_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
