# Empty dependencies file for crash_injection_test.
# This may be replaced when dependencies are built.
