# Empty compiler generated dependencies file for baseline_crash_test.
# This may be replaced when dependencies are built.
